package sim

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/pool"
	"mrvd/internal/trace"
)

// poolGreedy commits every shared-ride insertion option first (one per
// rider and per plan), then falls back to takeAll's solo pairing for
// the rest — the minimal pooling-aware dispatcher the engine tests
// drive (internal/dispatch's POOL cannot be imported here: cycle).
type poolGreedy struct{}

func (poolGreedy) Name() string { return "poolGreedy" }
func (poolGreedy) Assign(ctx *Context) []Assignment {
	usedR := make(map[int32]bool)
	usedPlan := make(map[DriverID]bool)
	var out []Assignment
	for i, opt := range ctx.PoolOptions {
		if usedR[opt.R] || usedPlan[opt.Driver] {
			continue
		}
		usedR[opt.R] = true
		usedPlan[opt.Driver] = true
		out = append(out, Assignment{R: opt.R, Pool: true, Option: int32(i)})
	}
	usedD := make(map[int32]bool)
	for _, p := range ctx.Pairs {
		if usedR[p.R] || usedD[p.D] {
			continue
		}
		usedR[p.R] = true
		usedD[p.D] = true
		out = append(out, Assignment{R: p.R, D: p.D})
	}
	return out
}

// TestPoolingZeroValueByteIdentical is the pooling parity pin: a
// zero-valued pool.Config — or any capacity <= 1, detour knob set or
// not — must reproduce the pooling-free engine exactly: same Summary,
// same idle ledger, same event stream, no pooled counters.
func TestPoolingZeroValueByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 3; trial++ {
		orders, drivers := randomScenario(rng)
		run := func(pc pool.Config) (Summary, []IdleRecord, *simEventLog) {
			log := &simEventLog{}
			cfg := simpleConfig()
			cfg.Horizon = 4000
			cfg.Observer = log
			cfg.Pooling = pc
			m, err := New(cfg, orders, drivers).Run(context.Background(), takeAll{})
			if err != nil {
				t.Fatal(err)
			}
			return m.Summary(), m.IdleRecords, log
		}
		base, baseIdle, baseLog := run(pool.Config{})
		for _, pc := range []pool.Config{
			{Capacity: 1},
			{Capacity: 1, MaxDetourSeconds: 120},
			{Capacity: 0, MaxDetourSeconds: 600},
		} {
			got, gotIdle, gotLog := run(pc)
			if got != base {
				t.Fatalf("trial %d: pooling config %+v changed the summary:\n  base: %+v\n  got:  %+v",
					trial, pc, base, got)
			}
			if len(gotIdle) != len(baseIdle) {
				t.Fatalf("trial %d: idle ledger length %d, want %d", trial, len(gotIdle), len(baseIdle))
			}
			// Estimate is NaN without an estimator, so compare the
			// records field-wise with NaN-aware float equality.
			feq := func(a, b float64) bool {
				return a == b || (math.IsNaN(a) && math.IsNaN(b))
			}
			for i := range baseIdle {
				x, y := baseIdle[i], gotIdle[i]
				if x.Driver != y.Driver || x.Region != y.Region || x.RejoinAt != y.RejoinAt ||
					!feq(x.Estimate, y.Estimate) || !feq(x.Realized, y.Realized) {
					t.Fatalf("trial %d: idle ledger diverges at %d: %+v vs %+v", trial, i, x, y)
				}
			}
			diffLogs(t, baseLog, gotLog)
			if got.SharedServed != 0 || got.DetourSeconds != 0 {
				t.Fatalf("disabled pooling produced pooled counters: %+v", got)
			}
		}
	}
}

// poolRideScenario is the deterministic shared-ride instance the tests
// below build on: one driver 1km east of rider A's pickup; A rides 5km
// east, and rider B (posted just after) wants a leg that lies on A's
// committed route, so insertion is the only way to serve B — the lone
// driver is busy from the first batch on.
func poolRideScenario(dropoffB float64) ([]trace.Order, []geo.Point) {
	p0 := center()
	orders := []trace.Order{
		{ID: 0, PostTime: 1, Pickup: p0, Dropoff: offset(p0, 5000), Deadline: 300},
		{ID: 1, PostTime: 4, Pickup: offset(p0, 2000), Dropoff: offset(p0, dropoffB), Deadline: 400},
	}
	return orders, []geo.Point{offset(p0, 1000)}
}

// TestPooledInsertionServesSecondRider: the second rider is served by
// splicing into the busy driver's plan — zero extra route seconds, both
// riders complete, and the stop events interleave in route order.
func TestPooledInsertionServesSecondRider(t *testing.T) {
	orders, drivers := poolRideScenario(4000)
	log := &simEventLog{}
	cfg := simpleConfig()
	cfg.Observer = log
	cfg.Pooling = pool.Config{Capacity: 2}
	e := New(cfg, orders, drivers)
	m, err := e.Run(context.Background(), poolGreedy{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 2 || m.Reneged != 0 {
		t.Fatalf("served %d, reneged %d; want both riders served", m.Served, m.Reneged)
	}
	if m.SharedServed != 1 {
		t.Fatalf("SharedServed = %d, want 1 (rider B only; A started solo)", m.SharedServed)
	}
	// B's leg lies exactly on A's route: the realized detour is zero up
	// to coordinate rounding.
	if m.DetourSeconds > 1e-6 {
		t.Fatalf("on-the-way insertion recorded %.9fs of detour", m.DetourSeconds)
	}
	a, b := e.Riders()[0], e.Riders()[1]
	if a.Shared || !b.Shared {
		t.Fatalf("shared flags: A=%v B=%v, want false/true", a.Shared, b.Shared)
	}
	if b.PickedAt <= a.PickedAt {
		t.Fatalf("B picked up at %.1f, before A at %.1f", b.PickedAt, a.PickedAt)
	}
	if d := e.Drivers()[0]; d.Served != 2 {
		t.Fatalf("driver served %d trips, want 2", d.Served)
	}
	// Stop completions in route order: pickup A, pickup B, dropoff B,
	// dropoff A (B's leg nests inside A's trip).
	var stops []string
	for _, line := range log.entries {
		if strings.HasPrefix(line, "pickup") || strings.HasPrefix(line, "dropoff") {
			stops = append(stops, line[:strings.Index(line, " t=")])
		}
	}
	want := []string{"pickup o=0 d=0", "pickup o=1 d=0", "dropoff o=1 d=0", "dropoff o=0 d=0"}
	if len(stops) != len(want) {
		t.Fatalf("stop events %v, want %v", stops, want)
	}
	for i := range want {
		if stops[i] != want[i] {
			t.Fatalf("stop event %d = %q, want %q", i, stops[i], want[i])
		}
	}
	checkRunInvariants(t, e, m)
}

// TestPooledCancelReleasesOnlyTheirStops: an assigned pooled rider who
// cancels before pickup leaves the other rider's committed stops (and
// the front leg) untouched, rolls the commit's accounting back, and
// pulls the driver's completion back in; an onboard rider's cancel is
// rejected outright.
func TestPooledCancelReleasesOnlyTheirStops(t *testing.T) {
	// B's dropoff lies past A's, so the insertion appends it and extends
	// the driver's completion — the cancel then has a real tail to trim.
	orders, drivers := poolRideScenario(6000)
	src := NewChannelSource()
	rec := &recordingObserver{}
	cfg := simpleConfig()
	cfg.Observer = rec
	cfg.Pooling = pool.Config{Capacity: 2}
	e := NewWithSource(cfg, src, drivers)
	if err := e.Begin(); err != nil {
		t.Fatal(err)
	}
	for _, o := range orders {
		if err := src.Submit(o); err != nil {
			t.Fatal(err)
		}
	}
	stepEngine(t, e, poolGreedy{}, 0, 9, 3)

	a, b := e.Riders()[0], e.Riders()[1]
	if a.Status != AssignedStatus || b.Status != AssignedStatus || !b.Shared {
		t.Fatalf("setup: statuses A=%d B=%d shared=%v, want both assigned, B shared", a.Status, b.Status, b.Shared)
	}
	d := &e.Drivers()[0]
	extendedFreeAt := d.FreeAt
	p := e.ps.plans[0]
	if len(p.Stops) != 4 {
		t.Fatalf("setup: plan has %d stops, want 4", len(p.Stops))
	}
	soloEnd := p.Stops[2].ETA // A's dropoff: the pre-insertion completion
	if extendedFreeAt <= soloEnd {
		t.Fatalf("setup: insertion did not extend the completion (%.1f <= %.1f)", extendedFreeAt, soloEnd)
	}

	// B cancels before pickup: only B's stops leave the plan.
	src.Cancel(1)
	stepEngine(t, e, poolGreedy{}, 9, 12, 3)
	if b.Status != CanceledStatus {
		t.Fatalf("B status %d after cancel, want canceled", b.Status)
	}
	if len(p.Stops) != 2 || p.Stops[0].Order != 0 || p.Stops[1].Order != 0 {
		t.Fatalf("plan after cancel: %+v, want A's two stops", p.Stops)
	}
	if math.Abs(p.Stops[1].ETA-soloEnd) > 1e-9 {
		t.Fatalf("A's dropoff retimed by B's cancel: %.6f, want %.6f", p.Stops[1].ETA, soloEnd)
	}
	if math.Abs(d.FreeAt-soloEnd) > 1e-9 {
		t.Fatalf("driver completion not pulled back: %.6f, want %.6f", d.FreeAt, soloEnd)
	}
	if e.metrics.Served != 1 || d.Served != 1 {
		t.Fatalf("accounting not rolled back: served=%d driver=%d, want 1/1", e.metrics.Served, d.Served)
	}
	if math.Abs(e.metrics.Revenue-a.TripCost) > 1e-6 {
		t.Fatalf("revenue %.9f after rollback, want A's trip %.9f", e.metrics.Revenue, a.TripCost)
	}

	// Past A's pickup the rider is onboard: the cancel is dropped and
	// the trip completes.
	stepEngine(t, e, poolGreedy{}, 12, 120, 3)
	if p.Onboard != 1 {
		t.Fatalf("A not onboard at t=120 (pickup ETA ~91): onboard=%d", p.Onboard)
	}
	src.Cancel(0)
	stepEngine(t, e, poolGreedy{}, 120, 129, 3)
	if a.Status != AssignedStatus {
		t.Fatalf("onboard rider's cancel accepted: status %d", a.Status)
	}
	src.Close()
	stepEngine(t, e, poolGreedy{}, 129, 600, 3)
	m := e.Finish()
	if m.Served != 1 || m.Canceled != 1 || m.SharedServed != 0 {
		t.Fatalf("final served=%d canceled=%d shared=%d, want 1/1/0", m.Served, m.Canceled, m.SharedServed)
	}
	if rec.canceled != 1 {
		t.Fatalf("observer saw %d cancels, want 1", rec.canceled)
	}
	checkRunInvariants(t, e, m)
}

// TestPooledInsertionDeclineReleasesWholeInsertion: a driver declining
// a shared-ride insertion keeps their committed plan running untouched,
// the rider keeps waiting, and after the cooldown the insertion is
// re-offered and served.
func TestPooledInsertionDeclineReleasesWholeInsertion(t *testing.T) {
	// Find a seed whose first three draws go accept (A's solo commit),
	// decline (B's insertion), accept (B's retry) — same technique as
	// TestScenarioDeclineThenServe.
	const prob = 0.5
	seed := int64(-1)
	for s := int64(0); s < 1000; s++ {
		r := rand.New(rand.NewSource(s))
		if r.Float64() >= prob && r.Float64() < prob && r.Float64() >= prob {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed with accept/decline/accept draws in 1000 tries")
	}

	orders, drivers := poolRideScenario(4000)
	rec := &recordingObserver{}
	cfg := simpleConfig()
	cfg.Observer = rec
	cfg.Pooling = pool.Config{Capacity: 2}
	cfg.Scenario = ScenarioConfig{DeclineProb: prob, DeclineCooldown: 30, Seed: seed}
	e := New(cfg, orders, drivers)
	if err := e.Begin(); err != nil {
		t.Fatal(err)
	}
	// t=3: A admitted and committed (draw 1 accepts). t=6: B's insertion
	// offered and declined (draw 2).
	stepEngine(t, e, poolGreedy{}, 0, 9, 3)
	b := e.Riders()[1]
	if b.Status != WaitingStatus {
		t.Fatalf("declined insertion did not release the rider: status %d", b.Status)
	}
	if e.metrics.Declines != 1 || rec.declined != 1 {
		t.Fatalf("declines = %d (observer %d), want 1", e.metrics.Declines, rec.declined)
	}
	p := e.ps.plans[0]
	if len(p.Stops) != 2 {
		t.Fatalf("declined insertion mutated the plan: %d stops, want 2", len(p.Stops))
	}
	if until := e.ps.noInsertUntil[0]; until != 36 {
		t.Fatalf("insertion cooldown until %.1f, want 36 (decline at t=6 + 30s)", until)
	}
	// During the cooldown no option is offered; after it the insertion
	// is re-priced and draw 3 accepts.
	stepEngine(t, e, poolGreedy{}, 9, 36, 3)
	if b.Status != WaitingStatus || e.metrics.Declines != 1 {
		t.Fatalf("cooldown violated: status=%d declines=%d", b.Status, e.metrics.Declines)
	}
	stepEngine(t, e, poolGreedy{}, 36, 42, 3)
	if b.Status != AssignedStatus || !b.Shared {
		t.Fatalf("retry after cooldown not committed: status=%d shared=%v", b.Status, b.Shared)
	}
	m := e.Finish()
	if m.Served != 2 || m.Declines != 1 {
		t.Fatalf("final served=%d declines=%d, want 2/1", m.Served, m.Declines)
	}
}

// TestPooledSaturatedPeakServesMore: under a saturated burst (one batch
// of co-located demand, far more riders than drivers) enabling pooling
// strictly increases served orders per driver while every realized
// detour respects the bound — the capacity win the subsystem exists
// for.
func TestPooledSaturatedPeakServesMore(t *testing.T) {
	// 40 riders along one eastbound corridor, 4 drivers: solo dispatch
	// can serve at most a handful before deadlines pass.
	p0 := center()
	rng := rand.New(rand.NewSource(7))
	var orders []trace.Order
	for i := 0; i < 40; i++ {
		start := rng.Float64() * 3000
		length := 1000 + rng.Float64()*3000
		post := rng.Float64() * 60
		orders = append(orders, trace.Order{
			ID:       trace.OrderID(i),
			PostTime: post,
			Pickup:   offset(p0, start),
			Dropoff:  offset(p0, start+length),
			Deadline: post + 240 + rng.Float64()*120,
		})
	}
	drivers := []geo.Point{p0, offset(p0, 1000), offset(p0, 2000), offset(p0, 3000)}

	const maxDetour = 240.0
	run := func(pc pool.Config) (*Metrics, []float64) {
		var detours []float64
		obs := ObserverFuncs{
			DroppedOff: func(e DroppedOffEvent) {
				if e.Shared {
					detours = append(detours, e.DetourSeconds)
				}
			},
		}
		cfg := simpleConfig()
		cfg.Horizon = 4000
		cfg.Observer = obs
		cfg.Pooling = pc
		m, err := New(cfg, orders, drivers).Run(context.Background(), poolGreedy{})
		if err != nil {
			t.Fatal(err)
		}
		return m, detours
	}

	solo, _ := run(pool.Config{})
	pooled, detours := run(pool.Config{Capacity: 3, MaxDetourSeconds: maxDetour})
	if pooled.Served <= solo.Served {
		t.Fatalf("pooling did not raise throughput: served %d pooled vs %d solo", pooled.Served, solo.Served)
	}
	if pooled.SharedServed == 0 || len(detours) != pooled.SharedServed {
		t.Fatalf("shared trips %d, detour samples %d", pooled.SharedServed, len(detours))
	}
	for _, d := range detours {
		if d > maxDetour+1e-9 {
			t.Fatalf("realized detour %.3fs exceeds the %.0fs bound", d, maxDetour)
		}
	}
	t.Logf("peak burst: solo served %d, pooled served %d (%d shared, mean detour %.1fs)",
		solo.Served, pooled.Served, pooled.SharedServed, pooled.DetourSeconds/float64(pooled.SharedServed))
}
