package sim

import (
	"context"
	"math"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/roadnet"
	"mrvd/internal/trace"
)

// takeAll assigns every rider its first (nearest) valid pair, first-fit.
type takeAll struct{}

func (takeAll) Name() string { return "takeAll" }
func (takeAll) Assign(ctx *Context) []Assignment {
	usedD := make(map[int32]bool)
	var out []Assignment
	for _, p := range ctx.Pairs {
		if usedD[p.D] {
			continue
		}
		if len(out) > 0 && out[len(out)-1].R == p.R {
			continue
		}
		already := false
		for _, a := range out {
			if a.R == p.R {
				already = true
				break
			}
		}
		if already {
			continue
		}
		usedD[p.D] = true
		out = append(out, Assignment{R: p.R, D: p.D})
	}
	return out
}

// noop assigns nothing.
type noop struct{}

func (noop) Name() string                     { return "noop" }
func (noop) Assign(ctx *Context) []Assignment { return nil }

// center returns a point near the middle of the NYC box.
func center() geo.Point { return geo.NYCBBox.Center() }

// offset shifts a point east by approximately the given meters.
func offset(p geo.Point, meters float64) geo.Point {
	dLng := meters / (geo.EarthRadiusMeters * math.Cos(p.Lat*math.Pi/180)) * 180 / math.Pi
	return geo.Point{Lng: p.Lng + dLng, Lat: p.Lat}
}

func simpleConfig() Config {
	return Config{Delta: 3, TC: 600, Horizon: 3600}
}

func TestEngineServesReachableOrder(t *testing.T) {
	// One driver 400m from the pickup; trip of ~2km east. At the 11 m/s
	// default speed the pickup takes ~36s against a 120s deadline.
	pickup := center()
	orders := []trace.Order{{
		ID: 0, PostTime: 10, Pickup: pickup,
		Dropoff:  offset(pickup, 2000),
		Deadline: 130,
	}}
	e := New(simpleConfig(), orders, []geo.Point{offset(pickup, 400)})
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 1 || m.Reneged != 0 {
		t.Fatalf("served=%d reneged=%d, want 1/0", m.Served, m.Reneged)
	}
	wantTrip := roadnet.NewDefaultCoster().Cost(pickup, offset(pickup, 2000))
	if math.Abs(m.Revenue-wantTrip) > 1e-9 {
		t.Errorf("revenue = %v, want %v", m.Revenue, wantTrip)
	}
	if m.PickupSeconds <= 0 {
		t.Error("pickup seconds not recorded")
	}
	drv := e.Drivers()[0]
	if drv.Served != 1 {
		t.Errorf("driver served %d, want 1", drv.Served)
	}
	// Driver ends at the dropoff.
	if got := geo.Equirect(drv.Pos, offset(pickup, 2000)); got > 1 {
		t.Errorf("driver final position %.1fm from dropoff", got)
	}
}

func TestEngineRenegesUnreachableOrder(t *testing.T) {
	// Driver 10km away, deadline 60s: infeasible.
	pickup := center()
	orders := []trace.Order{{
		ID: 0, PostTime: 10, Pickup: pickup,
		Dropoff:  offset(pickup, 1000),
		Deadline: 70,
	}}
	e := New(simpleConfig(), orders, []geo.Point{offset(pickup, 10000)})
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 0 || m.Reneged != 1 {
		t.Fatalf("served=%d reneged=%d, want 0/1", m.Served, m.Reneged)
	}
}

func TestEngineRenegesWithNoopDispatcher(t *testing.T) {
	pickup := center()
	orders := []trace.Order{
		{ID: 0, PostTime: 5, Pickup: pickup, Dropoff: offset(pickup, 500), Deadline: 100},
		{ID: 1, PostTime: 7, Pickup: pickup, Dropoff: offset(pickup, 900), Deadline: 150},
	}
	e := New(simpleConfig(), orders, []geo.Point{pickup})
	m, err := e.Run(context.Background(), noop{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 0 || m.Reneged != 2 {
		t.Fatalf("served=%d reneged=%d, want 0/2", m.Served, m.Reneged)
	}
	if m.Revenue != 0 {
		t.Errorf("revenue = %v, want 0", m.Revenue)
	}
}

func TestEngineBusyDriverRejoinsAndServesAgain(t *testing.T) {
	pickup := center()
	// Second order posted after the first trip completes, near the first
	// order's dropoff.
	drop1 := offset(pickup, 1600) // trip1 ~200s
	orders := []trace.Order{
		{ID: 0, PostTime: 3, Pickup: pickup, Dropoff: drop1, Deadline: 120},
		{ID: 1, PostTime: 400, Pickup: offset(drop1, 200), Dropoff: offset(drop1, 2000), Deadline: 520},
	}
	e := New(simpleConfig(), orders, []geo.Point{pickup})
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 2 {
		t.Fatalf("served = %d, want 2", m.Served)
	}
	// The idle ledger must contain the rejoin gap: driver completed trip
	// 1 well before order 2 arrived at t=400.
	foundRejoinIdle := false
	for _, rec := range m.IdleRecords {
		if rec.RejoinAt > 0 && rec.Realized > 100 {
			foundRejoinIdle = true
		}
	}
	if !foundRejoinIdle {
		t.Error("no rejoin idle record with the expected ~200s gap")
	}
}

func TestEngineIdleLedgerRealizedValues(t *testing.T) {
	pickup := center()
	orders := []trace.Order{{
		ID: 0, PostTime: 100, Pickup: pickup,
		Dropoff: offset(pickup, 800), Deadline: 220,
	}}
	e := New(simpleConfig(), orders, []geo.Point{pickup})
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.IdleRecords) != 1 {
		t.Fatalf("%d idle records, want 1 (initial driver)", len(m.IdleRecords))
	}
	rec := m.IdleRecords[0]
	// Driver free since t=0, assigned at the first batch after t=100
	// (Delta=3 -> t=102).
	if rec.Realized < 100 || rec.Realized > 106 {
		t.Errorf("realized idle = %v, want ~102", rec.Realized)
	}
	if !math.IsNaN(rec.Estimate) {
		t.Errorf("estimate = %v, want NaN (dispatcher estimates nothing)", rec.Estimate)
	}
}

func TestEngineRejectsInvalidAssignments(t *testing.T) {
	pickup := center()
	mk := func() *Engine {
		orders := []trace.Order{{
			ID: 0, PostTime: 1, Pickup: pickup,
			Dropoff: offset(pickup, 500), Deadline: 200,
		}}
		return New(simpleConfig(), orders, []geo.Point{pickup, offset(pickup, 100)})
	}
	cases := []struct {
		name string
		d    Dispatcher
	}{
		{"out of range", funcDispatcher(func(ctx *Context) []Assignment {
			if len(ctx.Riders) == 0 {
				return nil
			}
			return []Assignment{{R: 0, D: 99}}
		})},
		{"rider twice", funcDispatcher(func(ctx *Context) []Assignment {
			if len(ctx.Riders) == 0 {
				return nil
			}
			return []Assignment{{R: 0, D: 0}, {R: 0, D: 1}}
		})},
		{"driver twice", funcDispatcher(func(ctx *Context) []Assignment {
			if len(ctx.Riders) < 1 {
				return nil
			}
			return []Assignment{{R: 0, D: 0}, {R: 0, D: 0}}
		})},
	}
	for _, c := range cases {
		if _, err := mk().Run(context.Background(), c.d); err == nil {
			t.Errorf("%s: engine accepted invalid assignment", c.name)
		}
	}
}

type funcDispatcher func(ctx *Context) []Assignment

func (funcDispatcher) Name() string                       { return "func" }
func (f funcDispatcher) Assign(ctx *Context) []Assignment { return f(ctx) }

func TestEngineRejectsDeadlineViolation(t *testing.T) {
	pickup := center()
	orders := []trace.Order{{
		ID: 0, PostTime: 1, Pickup: pickup,
		Dropoff: offset(pickup, 500), Deadline: 40,
	}}
	// Driver 5km away cannot make a 40s deadline, but a malicious
	// dispatcher assigns it anyway by fabricating the pair.
	e := New(simpleConfig(), orders, []geo.Point{offset(pickup, 5000)})
	_, err := e.Run(context.Background(), funcDispatcher(func(ctx *Context) []Assignment {
		if len(ctx.Riders) == 0 || len(ctx.Drivers) == 0 {
			return nil
		}
		return []Assignment{{R: 0, D: 0}}
	}))
	if err == nil {
		t.Fatal("engine accepted a deadline-violating assignment")
	}
}

func TestEngineIgnorePickupServesInstantly(t *testing.T) {
	pickup := center()
	orders := []trace.Order{{
		ID: 0, PostTime: 1, Pickup: pickup,
		Dropoff: offset(pickup, 3000), Deadline: 20,
	}}
	// Driver far away; only IgnorePickup can serve this.
	e := New(simpleConfig(), orders, []geo.Point{offset(pickup, 20000)})
	m, err := e.Run(context.Background(), funcDispatcher(func(ctx *Context) []Assignment {
		if len(ctx.Riders) == 0 || len(ctx.Drivers) == 0 {
			return nil
		}
		return []Assignment{{R: 0, D: 0, IgnorePickup: true}}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 1 {
		t.Fatalf("served = %d, want 1", m.Served)
	}
	if m.PickupSeconds != 0 {
		t.Errorf("pickup seconds = %v, want 0 under IgnorePickup", m.PickupSeconds)
	}
}

func TestEngineSingleUse(t *testing.T) {
	e := New(simpleConfig(), nil, []geo.Point{center()})
	if _, err := e.Run(context.Background(), noop{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), noop{}); err == nil {
		t.Error("second Run accepted")
	}
}

func TestEnginePredictedDriversCountsFutureRejoins(t *testing.T) {
	pickup := center()
	drop := offset(pickup, 4000) // trip ~500s
	orders := []trace.Order{{
		ID: 0, PostTime: 1, Pickup: pickup, Dropoff: drop, Deadline: 120,
	}}
	var sawFuture bool
	grid := geo.NewNYCGrid()
	destRegion := grid.Region(drop)
	e := New(simpleConfig(), orders, []geo.Point{pickup})
	_, err := e.Run(context.Background(), funcDispatcher(func(ctx *Context) []Assignment {
		if ctx.Now > 10 && ctx.Now < 400 {
			if ctx.PredictedDrivers[destRegion] > 0 {
				sawFuture = true
			}
		}
		if len(ctx.Pairs) > 0 {
			return []Assignment{{R: ctx.Pairs[0].R, D: ctx.Pairs[0].D}}
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !sawFuture {
		t.Error("busy driver's future rejoin never surfaced in PredictedDrivers")
	}
}

func TestEngineOutcomeAccounting(t *testing.T) {
	// Every order must terminate as served or reneged when the horizon
	// extends past all deadlines.
	pickup := center()
	var orders []trace.Order
	for i := 0; i < 40; i++ {
		p := offset(pickup, float64(i*150))
		orders = append(orders, trace.Order{
			ID: trace.OrderID(i), PostTime: float64(1 + i*20),
			Pickup: p, Dropoff: offset(p, 1200),
			Deadline: float64(1+i*20) + 120,
		})
	}
	e := New(simpleConfig(), orders, []geo.Point{pickup, offset(pickup, 2000)})
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served+m.Reneged != m.TotalOrders {
		t.Errorf("served %d + reneged %d != total %d", m.Served, m.Reneged, m.TotalOrders)
	}
	if m.Served == 0 {
		t.Error("nothing served in a feasible scenario")
	}
	// Batches ran for the full horizon.
	if m.Batches != 1200 {
		t.Errorf("batches = %d, want 1200 (3600s / 3s)", m.Batches)
	}
	if m.ServiceRate() <= 0 || m.ServiceRate() > 1 {
		t.Errorf("service rate = %v", m.ServiceRate())
	}
}

func TestEngineDeterministic(t *testing.T) {
	pickup := center()
	var orders []trace.Order
	for i := 0; i < 30; i++ {
		p := offset(pickup, float64(i*200))
		orders = append(orders, trace.Order{
			ID: trace.OrderID(i), PostTime: float64(i * 10),
			Pickup: p, Dropoff: offset(p, 1500),
			Deadline: float64(i*10) + 150,
		})
	}
	starts := []geo.Point{pickup, offset(pickup, 1000), offset(pickup, 3000)}
	m1, err := New(simpleConfig(), orders, starts).Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(simpleConfig(), orders, starts).Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Revenue != m2.Revenue || m1.Served != m2.Served || m1.Reneged != m2.Reneged {
		t.Errorf("nondeterministic: %+v vs %+v", m1, m2)
	}
}

func TestContextPairsByRider(t *testing.T) {
	ctx := &Context{
		Pairs: []Pair{
			{R: 0, D: 1}, {R: 0, D: 2},
			{R: 2, D: 0},
		},
	}
	if got := ctx.PairsByRider(0); len(got) != 2 {
		t.Errorf("rider 0 pairs = %d, want 2", len(got))
	}
	if got := ctx.PairsByRider(1); len(got) != 0 {
		t.Errorf("rider 1 pairs = %d, want 0", len(got))
	}
	if got := ctx.PairsByRider(2); len(got) != 1 || got[0].D != 0 {
		t.Errorf("rider 2 pairs wrong: %v", got)
	}
	if got := ctx.PairsByDriver(2); len(got) != 1 || got[0].R != 0 {
		t.Errorf("driver 2 pairs wrong: %v", got)
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := &Metrics{BatchSeconds: []float64{0.1, 0.3, 0.2}}
	if got := m.AvgBatchSeconds(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("avg = %v", got)
	}
	if got := m.MaxBatchSeconds(); got != 0.3 {
		t.Errorf("max = %v", got)
	}
	empty := &Metrics{}
	if empty.AvgBatchSeconds() != 0 || empty.MaxBatchSeconds() != 0 || empty.ServiceRate() != 0 {
		t.Error("empty metrics helpers nonzero")
	}
}
