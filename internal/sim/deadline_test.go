package sim

import (
	"context"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/trace"
)

// These tests pin the deadline-boundary semantics across every check
// that touches it: an order whose Deadline equals the batch time is
// still dispatchable (renege uses strict <, feasibility uses strict >),
// and only a deadline strictly in the past reneges.

// TestDeadlineBoundaryDispatchable: Deadline == now with a driver at
// the pickup (zero pickup cost) must serve, through the regular
// candidate path — zero slack means a zero search radius, which still
// includes co-located drivers.
func TestDeadlineBoundaryDispatchable(t *testing.T) {
	pickup := center()
	orders := []trace.Order{{
		ID: 0, PostTime: 6, Pickup: pickup,
		Dropoff:  offset(pickup, 1500),
		Deadline: 6, // exactly the t=6 batch (Delta 3)
	}}
	e := New(simpleConfig(), orders, []geo.Point{pickup})
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 1 || m.Reneged != 0 {
		t.Fatalf("deadline==now order: served=%d reneged=%d, want 1/0", m.Served, m.Reneged)
	}
	if r := e.Riders()[0]; r.PickedAt != 6 {
		t.Fatalf("picked at %v, want exactly the deadline batch t=6", r.PickedAt)
	}
}

// TestDeadlineBoundaryIgnorePickup: the UPPER-style IgnorePickup path
// must agree — a Deadline == now rider is assignable.
func TestDeadlineBoundaryIgnorePickup(t *testing.T) {
	pickup := center()
	orders := []trace.Order{{
		ID: 0, PostTime: 6, Pickup: pickup,
		Dropoff:  offset(pickup, 1500),
		Deadline: 6,
	}}
	e := New(simpleConfig(), orders, []geo.Point{offset(pickup, 20000)})
	m, err := e.Run(context.Background(), funcDispatcher(func(ctx *Context) []Assignment {
		if len(ctx.Riders) == 0 || len(ctx.Drivers) == 0 {
			return nil
		}
		return []Assignment{{R: 0, D: 0, IgnorePickup: true}}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 1 {
		t.Fatalf("IgnorePickup at deadline boundary: served=%d, want 1", m.Served)
	}
}

// TestDeadlineBoundaryRenege: the rider expires only once the deadline
// is strictly past — at the batch after the boundary, not at it.
func TestDeadlineBoundaryRenege(t *testing.T) {
	pickup := center()
	orders := []trace.Order{{
		ID: 0, PostTime: 6, Pickup: pickup,
		Dropoff:  offset(pickup, 1500),
		Deadline: 6,
	}}
	var expiredAt float64 = -1
	cfg := simpleConfig()
	cfg.Observer = ObserverFuncs{Expired: func(e ExpiredEvent) { expiredAt = e.Now }}
	e := New(cfg, orders, []geo.Point{pickup})
	m, err := e.Run(context.Background(), noop{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Reneged != 1 {
		t.Fatalf("reneged=%d, want 1 under noop", m.Reneged)
	}
	// Still waiting at the t=6 boundary batch; expired at t=9.
	if expiredAt != 9 {
		t.Fatalf("expired at t=%v, want 9 (the first batch strictly past the deadline)", expiredAt)
	}
}

// TestDeadlineBoundaryPairFeasibility: buildContext keeps the exact
// now+cost == Deadline pair and drops the first infeasible one.
func TestDeadlineBoundaryPairFeasibility(t *testing.T) {
	pickup := center()
	orders := []trace.Order{{
		ID: 0, PostTime: 3, Pickup: pickup,
		Dropoff:  offset(pickup, 1500),
		Deadline: 6,
	}}
	e := NewWithSource(simpleConfig(), NewSliceSource(orders), []geo.Point{pickup})
	e.admitOrders(6)
	ctx := e.buildContext(6)
	if len(ctx.Pairs) != 1 || ctx.Pairs[0].PickupCost != 0 {
		t.Fatalf("zero-slack pair dropped: %v", ctx.Pairs)
	}
	if e.apply(6, ctx, []Assignment{{R: 0, D: 0}}) != nil {
		t.Fatal("apply rejected the boundary assignment")
	}
}
