package sim

import (
	"mrvd/internal/geo"
	"mrvd/internal/roadnet"
)

// Context is the batch snapshot handed to a Dispatcher: the waiting
// riders, available drivers, precomputed valid pairs, per-region counts,
// and the demand-supply predictions for the scheduling window
// [Now, Now+TC].
type Context struct {
	Now  float64
	TC   float64 // scheduling window length t_c in seconds
	Grid *geo.Grid
	// Coster prices travel; dispatchers may use it for what-if costs,
	// though every valid pair already carries its two legs.
	Coster roadnet.Coster

	// Riders are the batch's waiting riders; Drivers its available
	// drivers. Dispatchers must treat both as read-only.
	Riders  []*Rider
	Drivers []*Driver

	// Pairs are the valid dispatching pairs of Definition 3, grouped by
	// rider (ascending R, then ascending PickupCost).
	Pairs []Pair

	// WaitingPerRegion[k] = |R_k| and AvailablePerRegion[k] = |D_k|.
	WaitingPerRegion   []int
	AvailablePerRegion []int
	// PredictedRiders[k] = |^R_k|: predicted new riders in the window.
	// PredictedDrivers[k] = |^D_k|: drivers scheduled to rejoin region k
	// in the window (known exactly from active trips).
	PredictedRiders  []int
	PredictedDrivers []int

	// RiderRegion and DriverRegion cache each rider's pickup region and
	// driver's current region.
	RiderRegion  []geo.RegionID
	DriverRegion []geo.RegionID
}

// Dispatcher decides, for one batch, which valid pairs to serve
// (Algorithm 1 line 7).
type Dispatcher interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Assign returns a set of assignments. Each rider and each driver
	// may appear at most once; every (R, D) must come from ctx.Pairs
	// unless IgnorePickup is set.
	Assign(ctx *Context) []Assignment
}

// PairsByRider returns the slice of ctx.Pairs for one rider index,
// exploiting the rider-grouped ordering.
func (ctx *Context) PairsByRider(r int32) []Pair {
	// Binary search for the first pair with R >= r.
	lo, hi := 0, len(ctx.Pairs)
	for lo < hi {
		mid := (lo + hi) / 2
		if ctx.Pairs[mid].R < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	for hi = start; hi < len(ctx.Pairs) && ctx.Pairs[hi].R == r; hi++ {
	}
	return ctx.Pairs[start:hi]
}

// PairsByDriver collects the valid pairs involving one driver index.
// O(|Pairs|); dispatchers needing repeated driver lookups should build
// their own index once.
func (ctx *Context) PairsByDriver(d int32) []Pair {
	var out []Pair
	for _, p := range ctx.Pairs {
		if p.D == d {
			out = append(out, p)
		}
	}
	return out
}
