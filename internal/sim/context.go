package sim

import (
	"math"

	"mrvd/internal/geo"
	"mrvd/internal/pool"
	"mrvd/internal/roadnet"
)

// CostMatrix is a batch's dense driver-to-pickup travel-cost matrix,
// computed once per batch through roadnet.BatchCoster instead of
// per-pair Coster calls in inner loops. Rows are the batch's candidate
// drivers, columns its waiting riders (column index = rider index).
type CostMatrix struct {
	rows      [][]float64
	driverRow []int32 // driver slot -> row index, -1 when not a candidate
}

// Row returns driver slot d's cost row over the batch's riders, or nil
// when d was not a pricing candidate for any rider. Cells the batch
// didn't price (non-candidate pairs under a sparsely-filled closed-form
// coster) hold NaN. The slice is shared with the engine; callers must
// not mutate it.
func (m *CostMatrix) Row(d int32) []float64 {
	if m == nil || d < 0 || int(d) >= len(m.driverRow) || m.driverRow[d] < 0 {
		return nil
	}
	return m.rows[m.driverRow[d]]
}

// Cost returns the priced pickup cost for (driver slot d, rider r) and
// whether the matrix covers that pair.
func (m *CostMatrix) Cost(d, r int32) (float64, bool) {
	row := m.Row(d)
	if row == nil || r < 0 || int(r) >= len(row) || math.IsNaN(row[r]) {
		return 0, false
	}
	return row[r], true
}

// Context is the batch snapshot handed to a Dispatcher: the waiting
// riders, available drivers, precomputed valid pairs, per-region counts,
// and the demand-supply predictions for the scheduling window
// [Now, Now+TC].
type Context struct {
	Now  float64
	TC   float64 // scheduling window length t_c in seconds
	Grid *geo.Grid
	// Coster prices travel for what-if costs the batch didn't cover;
	// every valid pair already carries its two legs, and candidate
	// pickup costs sit in PickupCosts — prefer PickupCost over calling
	// Coster.Cost in inner loops.
	Coster roadnet.Coster
	// PickupCosts is the batch's precomputed driver-to-pickup cost
	// matrix; PickupCost is the checked accessor over it.
	PickupCosts *CostMatrix

	// Riders are the batch's waiting riders; Drivers its available
	// drivers. Dispatchers must treat both as read-only.
	Riders  []*Rider
	Drivers []*Driver

	// Pairs are the valid dispatching pairs of Definition 3, grouped by
	// rider (ascending R, then ascending PickupCost).
	Pairs []Pair

	// WaitingPerRegion[k] = |R_k| and AvailablePerRegion[k] = |D_k|.
	WaitingPerRegion   []int
	AvailablePerRegion []int
	// PredictedRiders[k] = |^R_k|: predicted new riders in the window.
	// PredictedDrivers[k] = |^D_k|: drivers scheduled to rejoin region k
	// in the window (known exactly from active trips).
	PredictedRiders  []int
	PredictedDrivers []int

	// RiderRegion and DriverRegion cache each rider's pickup region and
	// driver's current region.
	RiderRegion  []geo.RegionID
	DriverRegion []geo.RegionID

	// PoolCapacity is the onboard capacity when pooling is enabled, 0
	// otherwise. PoolOptions are the batch's feasible shared-ride
	// insertions, grouped by rider (ascending R); pooling-aware
	// dispatchers score them against solo Pairs and commit one with
	// Assignment.Pool. Both are empty when pooling is off, so
	// pooling-unaware dispatchers run unchanged.
	PoolCapacity int
	PoolOptions  []PoolOption
}

// PoolOption is one feasible shared-ride insertion the batch priced: a
// placement of rider R's pickup and dropoff into the active route plan
// of a busy pooled driver. Driver is the plan holder's fleet id — not
// an index into Context.Drivers, which lists only available drivers.
// Ins.Extra is the marginal seconds the insertion adds to the plan,
// the number to weigh against a solo pair's PickupCost.
type PoolOption struct {
	R      int32
	Driver DriverID
	Ins    pool.Insertion
}

// Dispatcher decides, for one batch, which valid pairs to serve
// (Algorithm 1 line 7).
type Dispatcher interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Assign returns a set of assignments. Each rider and each driver
	// may appear at most once; every (R, D) must come from ctx.Pairs
	// unless IgnorePickup is set.
	Assign(ctx *Context) []Assignment
}

// PickupCost returns the travel cost from driver slot d to rider r's
// pickup. Pairs the batch matrix covers are O(1) lookups; anything else
// falls back to a single-pair Coster query.
func (ctx *Context) PickupCost(d, r int32) float64 {
	if v, ok := ctx.PickupCosts.Cost(d, r); ok {
		return v
	}
	return ctx.Coster.Cost(ctx.Drivers[d].Pos, ctx.Riders[r].Order.Pickup)
}

// PairsByRider returns the slice of ctx.Pairs for one rider index,
// exploiting the rider-grouped ordering.
func (ctx *Context) PairsByRider(r int32) []Pair {
	// Binary search for the first pair with R >= r.
	lo, hi := 0, len(ctx.Pairs)
	for lo < hi {
		mid := (lo + hi) / 2
		if ctx.Pairs[mid].R < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	for hi = start; hi < len(ctx.Pairs) && ctx.Pairs[hi].R == r; hi++ {
	}
	return ctx.Pairs[start:hi]
}

// PairsByDriver collects the valid pairs involving one driver index.
// O(|Pairs|); dispatchers needing repeated driver lookups should build
// their own index once.
func (ctx *Context) PairsByDriver(d int32) []Pair {
	var out []Pair
	for _, p := range ctx.Pairs {
		if p.D == d {
			out = append(out, p)
		}
	}
	return out
}
