package sim

import (
	"math/rand"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/roadnet"
	"mrvd/internal/trace"
)

// clusteredWave builds one admission wave shaped like real demand: a
// few pickup clusters, trips a couple of kilometres long, everything
// posted by t=0.
func clusteredWave(n int) []trace.Order {
	rng := rand.New(rand.NewSource(8))
	c := center()
	var orders []trace.Order
	for i := 0; i < n; i++ {
		anchor := offset(c, float64((i%4)*4000))
		pickup := offset(anchor, rng.Float64()*300)
		orders = append(orders, trace.Order{
			ID: trace.OrderID(i), PostTime: 0,
			Pickup:   pickup,
			Dropoff:  offset(pickup, 1500+rng.Float64()*1000),
			Deadline: 600,
		})
	}
	return orders
}

// TestAdmissionWaveTripCostParity pins the bitwise contract of the
// admission sweep: trip costs priced through the wave's one Costs call
// must equal per-pair Cost queries exactly, for both built-in costers.
func TestAdmissionWaveTripCostParity(t *testing.T) {
	g := roadnet.GenerateGridNetwork(roadnet.GridNetworkConfig{Rows: 20, Cols: 20, Seed: 23})
	orders := clusteredWave(40)
	for _, c := range []roadnet.Coster{roadnet.NewGraphCoster(g), roadnet.NewDefaultCoster()} {
		admit := func(coster roadnet.Coster) []*Rider {
			cfg := simpleConfig()
			cfg.Coster = coster
			e := NewWithSource(cfg, NewSliceSource(orders), []geo.Point{center()})
			e.admitOrders(0)
			return e.Riders()
		}
		batched := admit(c)
		perPair := admit(pairOnlyCoster{c})
		if len(batched) != len(orders) || len(perPair) != len(orders) {
			t.Fatalf("admitted %d/%d riders, want %d", len(batched), len(perPair), len(orders))
		}
		for i := range batched {
			if batched[i].TripCost != perPair[i].TripCost {
				t.Fatalf("order %d: batched trip cost %v != per-pair %v",
					i, batched[i].TripCost, perPair[i].TripCost)
			}
		}
	}
}

// TestAdmissionWaveFewerComputations is the admission-side companion of
// TestBatchCostsFewerComputations: pricing one wave's pickup→dropoff
// costs through a single Costs call must settle fewer Dijkstra nodes
// than the per-pair loop, whose every cache miss expands a full
// shortest-path tree while the batch run truncates at the wave's
// dropoffs.
func TestAdmissionWaveFewerComputations(t *testing.T) {
	g := roadnet.GenerateGridNetwork(roadnet.GridNetworkConfig{Rows: 30, Cols: 30, Seed: 23})
	orders := clusteredWave(60)

	admit := func(c roadnet.Coster) {
		cfg := simpleConfig()
		cfg.Coster = c
		e := NewWithSource(cfg, NewSliceSource(orders), []geo.Point{center()})
		e.admitOrders(0)
	}
	batchC := roadnet.NewGraphCoster(g)
	admit(batchC)
	pairC := roadnet.NewGraphCoster(g)
	admit(pairOnlyCoster{pairC})

	b, p := batchC.Stats(), pairC.Stats()
	if b.SettledNodes == 0 || p.SettledNodes == 0 {
		t.Fatalf("instrumentation broken: batch settled %d, per-pair %d", b.SettledNodes, p.SettledNodes)
	}
	ratio := float64(p.SettledNodes) / float64(b.SettledNodes)
	t.Logf("admission wave settled nodes: per-pair %d (%d full trees), batch %d (%d truncated runs) — %.2fx",
		p.SettledNodes, p.Trees, b.SettledNodes, b.PartialTrees, ratio)
	if ratio < 1.2 {
		t.Errorf("admission batching saved too little shortest-path work: %.2fx, want >= 1.2x", ratio)
	}
}
