package sim

import (
	"context"
	"math/rand"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/roadnet"
	"mrvd/internal/trace"
)

// pairOnlyCoster hides a coster's BatchCoster implementation, forcing
// the engine through the per-pair compatibility loop.
type pairOnlyCoster struct{ c roadnet.Coster }

func (p pairOnlyCoster) Cost(a, b geo.Point) float64 { return p.c.Cost(a, b) }

// TestEngineBatchCostingParity is the end-to-end form of the BatchCoster
// equivalence contract: a run whose coster prices batches natively
// (truncated, deduplicated, parallel Dijkstras) must produce a Summary
// identical — not approximately, identical — to the same run forced
// through single-pair Cost calls. Randomized over scenarios and over
// both built-in costers.
func TestEngineBatchCostingParity(t *testing.T) {
	g := roadnet.GenerateGridNetwork(roadnet.GridNetworkConfig{Rows: 16, Cols: 16, Seed: 23})
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 4; trial++ {
		orders, drivers := randomScenario(rng)
		costers := []roadnet.Coster{
			roadnet.NewGraphCoster(g),
			roadnet.NewDefaultCoster(),
		}
		for _, c := range costers {
			cfg := simpleConfig()
			cfg.Horizon = 4000
			cfg.Coster = c
			mBatch, err := New(cfg, orders, drivers).Run(context.Background(), takeAll{})
			if err != nil {
				t.Fatal(err)
			}
			cfg.Coster = pairOnlyCoster{c}
			mPair, err := New(cfg, orders, drivers).Run(context.Background(), takeAll{})
			if err != nil {
				t.Fatal(err)
			}
			if mBatch.Summary() != mPair.Summary() {
				t.Fatalf("trial %d: batch summary %+v != per-pair summary %+v",
					trial, mBatch.Summary(), mPair.Summary())
			}
		}
	}
}

// TestEngineCandidateCap checks the k-nearest pre-filter: a capped run
// still satisfies every invariant and never builds more pairs per rider
// than the cap allows.
func TestEngineCandidateCap(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	orders, drivers := randomScenario(rng)
	cfg := simpleConfig()
	cfg.Horizon = 4000
	cfg.CandidateCap = 3
	e := New(cfg, orders, drivers)
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	checkRunInvariants(t, e, m)

	// The cap also bounds Pairs per rider below MaxCandidatesPerRider.
	cfg2 := simpleConfig()
	cfg2.CandidateCap = 1
	e2 := NewWithSource(cfg2, NewSliceSource(orders), drivers)
	e2.admitOrders(3500) // pull in (almost) the whole trace
	ctx := e2.buildContext(3500)
	if len(ctx.Riders) == 0 {
		t.Fatal("no waiting riders admitted")
	}
	perRider := map[int32]int{}
	for _, p := range ctx.Pairs {
		perRider[p.R]++
		if perRider[p.R] > 1 {
			t.Fatalf("rider %d has %d pairs with CandidateCap=1", p.R, perRider[p.R])
		}
	}
}

// TestEngineBatchCostingWarmWork pins the cross-batch reuse property:
// over a full run — where riders wait across many batches and idle
// drivers stay put — the batch path's total shortest-path work
// (settled nodes) must stay within a few percent of warm per-pair
// costing, whose cached full trees served stationary drivers before
// the batch engine existed. (Without horizon-cached batch trees this
// ratio was ~3x.) The small allowance covers hot sources that pay a
// truncated run before being promoted to a full tree.
func TestEngineBatchCostingWarmWork(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	orders, drivers := randomScenario(rng)
	g := roadnet.GenerateGridNetwork(roadnet.GridNetworkConfig{Rows: 30, Cols: 30, Seed: 23})

	run := func(c roadnet.Coster) {
		cfg := simpleConfig()
		cfg.Horizon = 4000
		cfg.Coster = c
		if _, err := New(cfg, orders, drivers).Run(context.Background(), takeAll{}); err != nil {
			t.Fatal(err)
		}
	}
	batchC := roadnet.NewGraphCoster(g)
	run(batchC)
	pairC := roadnet.NewGraphCoster(g)
	run(pairOnlyCoster{pairC})

	b, p := batchC.Stats(), pairC.Stats()
	t.Logf("settled nodes over the run: batch %d (%d runs, %d hits), per-pair %d (%d trees, %d hits)",
		b.SettledNodes, b.PartialTrees, b.CacheHits, p.SettledNodes, p.Trees, p.CacheHits)
	if b.SettledNodes > p.SettledNodes+p.SettledNodes/10 {
		t.Errorf("batch path settled %d nodes, more than 1.1x warm per-pair's %d", b.SettledNodes, p.SettledNodes)
	}
}

// countingBatchCoster is a custom BatchCoster without the
// PerSourceAmortized opt-out — the documented contract is one dense
// Costs call per batch (think: a remote routing service batching RPCs).
type countingBatchCoster struct {
	roadnet.Coster
	batchCalls int
	pairCalls  int
}

func (c *countingBatchCoster) Cost(a, b geo.Point) float64 {
	c.pairCalls++
	return c.Coster.Cost(a, b)
}

func (c *countingBatchCoster) Costs(sources, targets []geo.Point) [][]float64 {
	c.batchCalls++
	out := make([][]float64, len(sources))
	for i, s := range sources {
		out[i] = make([]float64, len(targets))
		for j, t := range targets {
			out[i][j] = c.Coster.Cost(s, t)
		}
	}
	return out
}

// TestEngineHonorsCustomBatchCoster pins the API promise that a custom
// native BatchCoster is priced through batched Costs calls only — one
// for the admission wave's trip costs, one for the batch's pickup-cost
// matrix — never per-pair Cost queries.
func TestEngineHonorsCustomBatchCoster(t *testing.T) {
	pickup := center()
	orders := []trace.Order{{
		ID: 0, PostTime: 10, Pickup: pickup,
		Dropoff:  offset(pickup, 2000),
		Deadline: 130,
	}}
	cc := &countingBatchCoster{Coster: roadnet.NewDefaultCoster()}
	cfg := simpleConfig()
	cfg.Coster = cc
	e := NewWithSource(cfg, NewSliceSource(orders), []geo.Point{offset(pickup, 400)})
	e.admitOrders(11)
	if cc.batchCalls != 1 {
		t.Fatalf("admission wave made %d Costs calls, want 1", cc.batchCalls)
	}
	if cc.pairCalls != 0 {
		t.Fatalf("admission pricing made %d per-pair Cost calls, want 0", cc.pairCalls)
	}
	ctx := e.buildContext(11)
	if cc.batchCalls != 2 {
		t.Fatalf("custom BatchCoster got %d Costs calls, want 2 (admission + pickup matrix)", cc.batchCalls)
	}
	if cc.pairCalls != 0 {
		t.Fatalf("candidate pricing made %d per-pair Cost calls, want 0", cc.pairCalls)
	}
	if len(ctx.Pairs) != 1 {
		t.Fatalf("got %d pairs, want 1", len(ctx.Pairs))
	}
}

// TestContextPickupCostMatrixAndFallback covers the CostMatrix accessors
// and the Coster fallback for pairs outside the priced candidate set.
func TestContextPickupCostMatrixAndFallback(t *testing.T) {
	pickup := center()
	orders := []trace.Order{{
		ID: 0, PostTime: 10, Pickup: pickup,
		Dropoff:  offset(pickup, 2000),
		Deadline: 130,
	}}
	near := offset(pickup, 400)
	far := offset(pickup, 30000) // outside any patience radius
	e := NewWithSource(simpleConfig(), NewSliceSource(orders), []geo.Point{near, far})
	e.admitOrders(11)
	ctx := e.buildContext(11)
	if len(ctx.Riders) != 1 || len(ctx.Drivers) != 2 {
		t.Fatalf("context has %d riders / %d drivers", len(ctx.Riders), len(ctx.Drivers))
	}
	// The near driver is priced in the matrix.
	want := ctx.Coster.Cost(near, pickup)
	if got, ok := ctx.PickupCosts.Cost(0, 0); !ok || got != want {
		t.Fatalf("matrix cost = %v (ok=%v), want %v", got, ok, want)
	}
	if row := ctx.PickupCosts.Row(0); len(row) != 1 || row[0] != want {
		t.Fatalf("matrix row = %v, want [%v]", row, want)
	}
	// The far driver never became a candidate: no row, and PickupCost
	// falls back to a live Coster query with the same answer.
	if row := ctx.PickupCosts.Row(1); row != nil {
		t.Fatalf("far driver has matrix row %v, want none", row)
	}
	// (The engine clamps starts to the grid, so compare against the
	// driver's actual position, not the raw far point.)
	if got := ctx.PickupCost(1, 0); got != ctx.Coster.Cost(ctx.Drivers[1].Pos, pickup) {
		t.Fatalf("fallback pickup cost = %v", got)
	}
}
