package sim

import (
	"container/heap"
	"fmt"
	"math"

	"mrvd/internal/geo"
	"mrvd/internal/pool"
	"mrvd/internal/trace"
)

// poolState is the engine's per-run pooling machinery, nil when
// Config.Pooling is disabled so the single-trip hot path pays nothing.
//
// The structural invariant everything here leans on: a pooled busy
// driver has exactly one completion-heap entry, and it is the plan's
// front-stop arrival time. Insertions land at plan index >= 1 and a
// front-pickup cancel keeps the stop as an inert via-point, so the
// front stop's ETA never changes after commit and heap entries never go
// stale — no sequence numbers, no re-heapify.
type poolState struct {
	cfg pool.Config
	// plans maps busy pooled drivers to their active route plans.
	// Drivers busy for other reasons (decline cooldown, reposition
	// cruise) have no plan and rejoin through the legacy path.
	plans map[DriverID]*pool.Plan
	// riders tracks assigned riders still on a plan, with the amounts
	// their commit added to the metrics — the rollback data a
	// pre-pickup cancellation needs.
	riders map[trace.OrderID]*pooledRider
	// noInsertUntil holds per-driver insertion cooldowns from declined
	// insertions.
	noInsertUntil map[DriverID]float64
	// cost is the batch-scoped memoized leg pricer, rebuilt by
	// buildPoolOptions and reused by the same batch's commits so
	// insertion evaluation and splicing see bitwise-identical values.
	cost pool.CostFn
}

type pooledRider struct {
	r       *Rider
	revenue float64
	pickup  float64
}

func newPoolState(cfg pool.Config) *poolState {
	return &poolState{
		cfg:           cfg,
		plans:         make(map[DriverID]*pool.Plan),
		riders:        make(map[trace.OrderID]*pooledRider),
		noInsertUntil: make(map[DriverID]float64),
	}
}

// legKey keys the batch's memoized leg costs.
type legKey struct{ a, b geo.Point }

// startPlan converts a committed solo assignment into a two-stop route
// plan and schedules its front stop (the pickup) on the completion
// heap. All externally visible accounting matches the single-trip
// commit exactly; only the completion bookkeeping differs.
func (e *Engine) startPlan(r *Rider, id DriverID, pickupAt, dropAt, revenue, pickup float64) {
	e.ps.plans[id] = &pool.Plan{Stops: []pool.Stop{
		{Kind: pool.PickupStop, Order: r.Order.ID, Pos: r.Order.Pickup, ETA: pickupAt, Deadline: r.Order.Deadline},
		{Kind: pool.DropoffStop, Order: r.Order.ID, Pos: r.Order.Dropoff, ETA: dropAt, Direct: r.TripCost},
	}}
	e.ps.riders[r.Order.ID] = &pooledRider{r: r, revenue: revenue, pickup: pickup}
	heap.Push(&e.busy, completion{freeAt: pickupAt, driver: id})
}

// advancePlan consumes every due stop of a pooled driver's plan, firing
// pickup/dropoff events, then either schedules the next front stop or
// rejoins the driver exactly like a completed single trip.
func (e *Engine) advancePlan(now float64, id DriverID, p *pool.Plan) {
	freeAt := now
	for len(p.Stops) > 0 && p.Stops[0].ETA <= now {
		st := p.Stops[0]
		p.Stops = p.Stops[1:]
		freeAt = st.ETA
		switch {
		case st.Kind == pool.PickupStop && st.Canceled:
			// Inert via-point of a canceled rider: nobody to pick up.
		case st.Kind == pool.PickupStop:
			p.Onboard++
			for k := range p.Stops {
				if p.Stops[k].Kind == pool.DropoffStop && p.Stops[k].Order == st.Order {
					p.Stops[k].PickedAt = st.ETA
					break
				}
			}
			if pr, ok := e.ps.riders[st.Order]; ok {
				pr.r.PickedAt = st.ETA
			}
			if e.obs != nil {
				e.obs.pickedUp(st.Order, st.ETA)
			}
			if e.cfg.Observer != nil {
				e.cfg.Observer.OnPickedUp(PickedUpEvent{
					Now: now, At: st.ETA, Order: st.Order, Driver: id,
					Onboard: p.Onboard, Remaining: len(p.Stops),
				})
			}
		case st.Kind == pool.DropoffStop:
			p.Onboard--
			shared := false
			detour := st.ETA - st.PickedAt - st.Direct
			if pr, ok := e.ps.riders[st.Order]; ok {
				shared = pr.r.Shared
				delete(e.ps.riders, st.Order)
			}
			if shared {
				e.metrics.SharedServed++
				e.metrics.DetourSeconds += detour
			}
			if e.obs != nil {
				e.obs.droppedOff(st.Order, st.ETA)
			}
			if e.cfg.Observer != nil {
				e.cfg.Observer.OnDroppedOff(DroppedOffEvent{
					Now: now, At: st.ETA, Order: st.Order, Driver: id,
					Shared: shared, DetourSeconds: detour,
					Onboard: p.Onboard, Remaining: len(p.Stops),
				})
			}
		}
	}
	if len(p.Stops) > 0 {
		heap.Push(&e.busy, completion{freeAt: p.Stops[0].ETA, driver: id})
		return
	}
	delete(e.ps.plans, id)
	drv := &e.drivers[id]
	if e.shifts != nil {
		if la := e.shifts[id].LeaveAt; la > 0 && freeAt >= la {
			drv.State = Offline
			return
		}
	}
	drv.State = Available
	e.idx.Insert(int32(id), drv.Pos)
	region, _ := e.idx.RegionOf(int32(id))
	e.metrics.IdleRecords = append(e.metrics.IdleRecords, IdleRecord{
		Driver:   id,
		Region:   region,
		RejoinAt: freeAt,
		Estimate: math.NaN(),
		Realized: math.NaN(),
	})
	e.openIdle[id] = len(e.metrics.IdleRecords) - 1
}

// cancelPooled applies an explicit cancellation of a rider already
// committed to a route plan. Only the rider's own stops leave the plan;
// a rider already onboard (pickup consumed) is past the point of no
// return and the request is dropped, as is a cancel racing the trip's
// completion. The assignment's accounting is rolled back so the run's
// totals reflect only trips actually served.
func (e *Engine) cancelPooled(now float64, r *Rider) {
	pr, ok := e.ps.riders[r.Order.ID]
	if !ok || pr.r != r {
		return // trip already completed
	}
	p, ok := e.ps.plans[r.Driver]
	if !ok {
		return
	}
	d := &e.drivers[r.Driver]
	oldEnd := d.FreeAt
	oldRegion := e.cfg.Grid.Region(e.cfg.Grid.Bounds().Clamp(d.Pos))
	if !p.Cancel(r.Order.ID, e.cfg.Coster.Cost) {
		return // onboard: cancellation rejected
	}
	delete(e.ps.riders, r.Order.ID)

	// Roll back the commit's accounting and refresh the driver's
	// completion bookkeeping — the plan just got shorter. The front
	// stop survives every cancel, so the heap entry stays valid.
	e.metrics.Served--
	e.metrics.Revenue -= pr.revenue
	e.metrics.PickupSeconds -= pr.pickup
	d.Served--
	pos, end := p.End()
	d.Pos = pos
	d.FreeAt = end
	e.removeFutureRejoin(oldRegion, oldEnd)
	e.insertFutureRejoin(e.cfg.Grid.Region(e.cfg.Grid.Bounds().Clamp(pos)), end)

	r.Status = CanceledStatus
	e.metrics.Canceled++
	if e.obs != nil {
		e.obs.canceled(r.Order.ID, now)
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.OnCanceled(CanceledEvent{Now: now, Rider: r, Explicit: true})
	}
}

// applyPooled validates and commits one shared-ride insertion.
func (e *Engine) applyPooled(now float64, ctx *Context, a Assignment, usedR map[int32]bool, usedPool map[DriverID]bool) (bool, error) {
	if e.ps == nil {
		return false, fmt.Errorf("sim: pooled assignment without pooling enabled")
	}
	if a.Option < 0 || int(a.Option) >= len(ctx.PoolOptions) {
		return false, fmt.Errorf("sim: pool option %d out of range", a.Option)
	}
	opt := ctx.PoolOptions[a.Option]
	if opt.R != a.R {
		return false, fmt.Errorf("sim: pooled assignment rider %d does not match option rider %d", a.R, opt.R)
	}
	if usedR[a.R] {
		return false, fmt.Errorf("sim: rider %d assigned twice", a.R)
	}
	if usedPool[opt.Driver] {
		// The option's ETAs were priced against the plan as it stood at
		// batch start; a second splice into the same plan would commit
		// stale times.
		return false, fmt.Errorf("sim: driver %d's plan spliced twice in one batch", opt.Driver)
	}
	usedR[a.R] = true
	usedPool[opt.Driver] = true
	rider := ctx.Riders[a.R]
	if rider.Status != WaitingStatus {
		return false, fmt.Errorf("sim: rider %d not waiting", rider.Order.ID)
	}
	p, ok := e.ps.plans[opt.Driver]
	if !ok {
		return false, fmt.Errorf("sim: driver %d has no active plan", opt.Driver)
	}

	// Driver decline releases the whole insertion: the plan stays as
	// committed, the rider keeps waiting (deadline unchanged), and the
	// driver refuses further insertions until the cooldown passes —
	// their active plan keeps executing, so unlike a solo decline no
	// completion bookkeeping moves.
	if e.scen != nil && e.scen.declines() {
		retryAt := now + e.scen.cooldown()
		e.ps.noInsertUntil[opt.Driver] = retryAt
		e.metrics.Declines++
		if e.cfg.Observer != nil {
			e.cfg.Observer.OnDeclined(DeclinedEvent{Now: now, Rider: rider, Driver: opt.Driver, RetryAt: retryAt})
		}
		return false, nil
	}

	req := pool.Request{
		Order:    rider.Order.ID,
		Pickup:   rider.Order.Pickup,
		Dropoff:  rider.Order.Dropoff,
		Trip:     rider.TripCost,
		Deadline: rider.Order.Deadline,
	}
	leg := func(v float64) float64 { return v }
	noisy := e.scen != nil && e.scen.cfg.TravelNoise > 0
	if noisy {
		leg = e.scen.perturb
	}
	pickupAt, dropAt := p.Insert(req, opt.Ins, e.ps.cost, leg)
	if noisy {
		e.metrics.TravelRecords = append(e.metrics.TravelRecords, TravelRecord{
			Order:          rider.Order.ID,
			Driver:         opt.Driver,
			At:             now,
			PickupEstimate: opt.Ins.PickupETA - now,
			PickupRealized: pickupAt - now,
			TripEstimate:   opt.Ins.DropETA - opt.Ins.PickupETA,
			TripRealized:   dropAt - pickupAt,
		})
	}

	rider.Status = AssignedStatus
	rider.Driver = opt.Driver
	rider.Shared = true
	rider.PickedAt = pickupAt
	wait := pickupAt - now

	// The splice moved the plan's completion; the front stop (and with
	// it the heap entry) is untouched by construction.
	d := &e.drivers[opt.Driver]
	e.removeFutureRejoin(e.cfg.Grid.Region(e.cfg.Grid.Bounds().Clamp(d.Pos)), d.FreeAt)
	pos, end := p.End()
	d.Pos = pos
	d.FreeAt = end
	d.Served++
	e.insertFutureRejoin(e.cfg.Grid.Region(e.cfg.Grid.Bounds().Clamp(pos)), end)

	e.ps.riders[rider.Order.ID] = &pooledRider{r: rider, revenue: rider.TripCost, pickup: wait}
	e.metrics.Revenue += rider.TripCost
	e.metrics.PickupSeconds += wait
	e.metrics.Served++
	if e.obs != nil {
		e.obs.poolCommit()
		e.obs.commit(rider.Order.ID, now, opt.Driver, true)
	}

	if e.cfg.Observer != nil {
		e.cfg.Observer.OnAssigned(AssignedEvent{
			Now:           now,
			Rider:         rider,
			Driver:        opt.Driver,
			PickupCost:    wait,
			Revenue:       rider.TripCost,
			FreeAt:        dropAt,
			Shared:        true,
			DetourSeconds: dropAt - pickupAt - rider.TripCost,
			Onboard:       p.Onboard,
			Stops:         len(p.Stops),
			Dest:          pos,
			DriverFreeAt:  end,
		})
	}
	return true, nil
}

// buildPoolOptions prices the batch's feasible shared-ride insertions.
// Candidate (plan, rider) pairs pass a cheap geometric prefilter, the
// leg costs they need are priced through the batch coster's
// many-to-many matrices (two dense calls: plan stops to rider points
// and back), and pool.Best then runs entirely against the memoized
// matrix values — insertion evaluation stays batched, not per-pair.
func (e *Engine) buildPoolOptions(now float64, ctx *Context) {
	ps := e.ps
	ctx.PoolCapacity = ps.cfg.Capacity
	memo := make(map[legKey]float64)
	cost := func(a, b geo.Point) float64 {
		k := legKey{a, b}
		if v, ok := memo[k]; ok {
			return v
		}
		v := e.cfg.Coster.Cost(a, b)
		memo[k] = v
		return v
	}
	ps.cost = cost
	if len(e.waiting) == 0 || len(ps.plans) == 0 {
		return
	}

	// Insertable plans in driver-id order for determinism. A plan at
	// 2*Capacity stops is chain-saturated and skipped, as is a driver
	// still cooling down from a declined insertion.
	type candidate struct {
		id DriverID
		p  *pool.Plan
	}
	var plans []candidate
	for id := range e.drivers {
		p, ok := ps.plans[DriverID(id)]
		if !ok || len(p.Stops) >= 2*ps.cfg.Capacity {
			continue
		}
		if until, ok := ps.noInsertUntil[DriverID(id)]; ok {
			if until > now {
				continue
			}
			delete(ps.noInsertUntil, DriverID(id))
		}
		plans = append(plans, candidate{DriverID(id), p})
	}
	if len(plans) == 0 {
		return
	}

	// Geometric prefilter: an insertion can only reach the new pickup
	// from some existing stop before the rider's deadline, and
	// RadiusSpeedMPS upper-bounds travel speed — the same reachability
	// argument the solo candidate radius uses.
	cands := make([][]int, len(e.waiting))
	any := false
	for wi, r := range e.waiting {
		deadline := r.Order.Deadline
		for pi, c := range plans {
			near := false
			for _, s := range c.p.Stops {
				slack := deadline - s.ETA
				if slack < 0 {
					break // stops are time-ordered; later ones are worse
				}
				if geo.Equirect(s.Pos, r.Order.Pickup) <= slack*e.cfg.RadiusSpeedMPS {
					near = true
					break
				}
			}
			if near {
				cands[wi] = append(cands[wi], pi)
				any = true
			}
		}
	}
	if !any {
		return
	}

	// Price the candidate legs through the batch coster. The two dense
	// calls cover every stop<->rider-point leg an insertion evaluation
	// can touch; pool.Best and the commit's Insert then hit the memo
	// only. Lazy costers skip the prefill and price per cell on demand
	// — values are bitwise-identical either way (the BatchCoster
	// contract).
	if e.denseBatch {
		planUsed := make([]bool, len(plans))
		var stopPts, riderPts []geo.Point
		stopSeen := make(map[geo.Point]bool)
		riderSeen := make(map[geo.Point]bool)
		for wi, list := range cands {
			if len(list) == 0 {
				continue
			}
			r := e.waiting[wi]
			for _, pt := range [2]geo.Point{r.Order.Pickup, r.Order.Dropoff} {
				if !riderSeen[pt] {
					riderSeen[pt] = true
					riderPts = append(riderPts, pt)
				}
			}
			for _, pi := range list {
				planUsed[pi] = true
			}
		}
		for pi, c := range plans {
			if !planUsed[pi] {
				continue
			}
			for _, s := range c.p.Stops {
				if !stopSeen[s.Pos] {
					stopSeen[s.Pos] = true
					stopPts = append(stopPts, s.Pos)
				}
			}
		}
		if len(stopPts) > 0 && len(riderPts) > 0 {
			fromStops := e.batch.Costs(stopPts, riderPts)
			fromRiders := e.batch.Costs(riderPts, stopPts)
			for i, sp := range stopPts {
				for j, rp := range riderPts {
					memo[legKey{sp, rp}] = fromStops[i][j]
					memo[legKey{rp, sp}] = fromRiders[j][i]
				}
			}
		}
	}

	maxDetour := ps.cfg.Detour()
	evaluated, feasible := 0, 0
	for wi, list := range cands {
		if len(list) == 0 {
			continue
		}
		r := e.waiting[wi]
		req := pool.Request{
			Order:    r.Order.ID,
			Pickup:   r.Order.Pickup,
			Dropoff:  r.Order.Dropoff,
			Trip:     r.TripCost,
			Deadline: r.Order.Deadline,
		}
		found := 0
		for _, pi := range list {
			if found >= e.cfg.MaxCandidatesPerRider {
				break
			}
			evaluated++
			ins, ok := pool.Best(plans[pi].p, req, ps.cfg.Capacity, maxDetour, cost)
			if !ok {
				continue
			}
			feasible++
			ctx.PoolOptions = append(ctx.PoolOptions, PoolOption{R: int32(wi), Driver: plans[pi].id, Ins: ins})
			found++
		}
	}
	if e.obs != nil {
		e.obs.poolSearch(evaluated, feasible)
	}
}
