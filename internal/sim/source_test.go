package sim

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"mrvd/internal/geo"
	"mrvd/internal/trace"
)

func mkOrder(id int, post, deadline float64) trace.Order {
	return trace.Order{
		ID: trace.OrderID(id), PostTime: post,
		Pickup: center(), Dropoff: offset(center(), 2000),
		Deadline: deadline,
	}
}

func TestSliceSourcePollsInPostTimeOrder(t *testing.T) {
	src := NewSliceSource([]trace.Order{
		mkOrder(2, 30, 100), mkOrder(0, 10, 100), mkOrder(1, 20, 100),
	})
	if src.TotalOrders() != 3 {
		t.Fatalf("TotalOrders = %d", src.TotalOrders())
	}
	ready, done := src.Poll(25)
	if len(ready) != 2 || ready[0].ID != 0 || ready[1].ID != 1 || done {
		t.Fatalf("Poll(25) = %v done=%v", ready, done)
	}
	ready, done = src.Poll(25)
	if len(ready) != 0 || done {
		t.Fatalf("second Poll(25) re-delivered: %v done=%v", ready, done)
	}
	ready, done = src.Poll(1000)
	if len(ready) != 1 || ready[0].ID != 2 || !done {
		t.Fatalf("Poll(1000) = %v done=%v", ready, done)
	}
}

func TestChannelSourceReleasesInPostTimeOrder(t *testing.T) {
	src := NewChannelSource()
	// Submit far out of post-time order, with a tie between 5 and 6.
	for _, o := range []trace.Order{
		mkOrder(3, 300, 500), mkOrder(1, 100, 500), mkOrder(2, 200, 500),
		mkOrder(5, 150, 500), mkOrder(6, 150, 500),
	} {
		if err := src.Submit(o); err != nil {
			t.Fatal(err)
		}
	}
	ready, done := src.Poll(250)
	if done {
		t.Fatal("done before Close")
	}
	var ids []int
	for _, o := range ready {
		ids = append(ids, int(o.ID))
	}
	// PostTime order, submission order breaking the 150 tie.
	want := []int{1, 5, 6, 2}
	if len(ids) != len(want) {
		t.Fatalf("released %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("released %v, want %v", ids, want)
		}
	}
	if src.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", src.Pending())
	}
}

func TestChannelSourceClosureSemantics(t *testing.T) {
	src := NewChannelSource()
	if err := src.Submit(mkOrder(1, 10, 100)); err != nil {
		t.Fatal(err)
	}
	src.Close()
	src.Close() // idempotent

	// Submit after Close fails; the buffered order is still delivered.
	if err := src.Submit(mkOrder(2, 20, 100)); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
	// Not yet done: order 1 is still buffered.
	if ready, done := src.Poll(5); len(ready) != 0 || done {
		t.Fatalf("Poll(5) = %v done=%v, want empty, not done", ready, done)
	}
	ready, done := src.Poll(50)
	if len(ready) != 1 || ready[0].ID != 1 || !done {
		t.Fatalf("Poll(50) = %v done=%v, want order 1 and done", ready, done)
	}
	if ready, done := src.Poll(60); len(ready) != 0 || !done {
		t.Fatalf("drained Poll = %v done=%v, want empty and done", ready, done)
	}
}

func TestChannelSourceRejectsInvalidOrder(t *testing.T) {
	src := NewChannelSource()
	bad := mkOrder(1, 100, 50) // deadline before posting
	if err := src.Submit(bad); err == nil {
		t.Fatal("invalid order accepted")
	}
	bad = mkOrder(2, 10, 100)
	bad.Pickup.Lng = math.NaN()
	if err := src.Submit(bad); err == nil {
		t.Fatal("NaN-coordinate order accepted")
	}
}

func TestChannelSourceConcurrentSubmit(t *testing.T) {
	src := NewChannelSource()
	const producers, perProducer = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				id := p*perProducer + i
				if err := src.Submit(mkOrder(id, float64(id%97), 1000)); err != nil {
					t.Error(err)
				}
			}
		}(p)
	}
	wg.Wait()
	src.Close()
	ready, done := src.Poll(1000)
	if len(ready) != producers*perProducer || !done {
		t.Fatalf("released %d orders done=%v, want %d and done", len(ready), done, producers*perProducer)
	}
	for i := 1; i < len(ready); i++ {
		if ready[i].PostTime < ready[i-1].PostTime {
			t.Fatalf("release order not sorted at %d: %v after %v", i, ready[i].PostTime, ready[i-1].PostTime)
		}
	}
}

func TestEngineRunsFromChannelSourceAndStopsWhenDrained(t *testing.T) {
	src := NewChannelSource()
	for i := 0; i < 5; i++ {
		if err := src.Submit(mkOrder(i, float64(10*i), 600)); err != nil {
			t.Fatal(err)
		}
	}
	src.Close()
	cfg := simpleConfig()
	cfg.StopWhenDrained = true
	cfg.Horizon = 100000
	starts := []geo.Point{center(), offset(center(), 500)}
	e := NewWithSource(cfg, src, starts)
	m, err := e.Run(context.Background(), takeAll{})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalOrders != 5 {
		t.Fatalf("TotalOrders = %d, want 5", m.TotalOrders)
	}
	if m.Served+m.Reneged != 5 {
		t.Fatalf("outcomes %d+%d, want 5", m.Served, m.Reneged)
	}
	// Drained exit: far fewer batches than the 100000s horizon implies.
	if float64(m.Batches)*cfg.Delta >= cfg.Horizon {
		t.Fatalf("engine ran to the horizon (%d batches) despite drain", m.Batches)
	}
}

func TestEngineLiveSubmitMidRun(t *testing.T) {
	// A dispatcher-driven feed: submit a second wave of orders from
	// inside the run (deterministically, at batch 20) and check they are
	// admitted and served.
	src := NewChannelSource()
	for i := 0; i < 3; i++ {
		if err := src.Submit(mkOrder(i, 0, 400)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := simpleConfig()
	cfg.StopWhenDrained = true
	cfg.Horizon = 50000
	starts := []geo.Point{center(), offset(center(), 400), offset(center(), 800)}
	e := NewWithSource(cfg, src, starts)
	fed := false
	d := funcDispatcher(func(ctx *Context) []Assignment {
		if !fed && ctx.Now >= 20*cfg.Delta {
			fed = true
			for i := 10; i < 13; i++ {
				if err := src.Submit(mkOrder(i, ctx.Now, ctx.Now+400)); err != nil {
					t.Error(err)
				}
			}
			src.Close()
		}
		return takeAll{}.Assign(ctx)
	})
	m, err := e.Run(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalOrders != 6 {
		t.Fatalf("TotalOrders = %d, want 6", m.TotalOrders)
	}
	if m.Served+m.Reneged != 6 {
		t.Fatalf("outcomes %d+%d, want 6", m.Served, m.Reneged)
	}
}

// TestEngineConcurrentSubmitDuringLiveRun hammers a running engine's
// ChannelSource from many goroutines — the gateway's actual write
// pattern, where Submit races the engine goroutine's Poll every batch.
// The race detector patrols this test (CI runs -race).
func TestEngineConcurrentSubmitDuringLiveRun(t *testing.T) {
	src := NewChannelSource()
	cfg := simpleConfig()
	cfg.StopWhenDrained = true
	cfg.Horizon = 1e9 // ends by drain, not horizon
	cfg.Delta = 30    // coarse batches keep the -race run cheap
	starts := make([]geo.Point, 8)
	for i := range starts {
		starts[i] = offset(center(), float64(i*200))
	}
	e := NewWithSource(cfg, src, starts)

	const producers, perProducer = 8, 15
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				// PostTime 0 is always in the engine's past, so every
				// order is admitted at the batch after its submission.
				o := mkOrder(p*perProducer+i, 0, 1e9)
				if err := src.Submit(o); err != nil {
					t.Error(err)
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		src.Close()
		close(done)
	}()

	m, err := e.Run(context.Background(), takeAll{})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	const total = producers * perProducer
	if m.TotalOrders != total {
		t.Fatalf("TotalOrders = %d, want %d", m.TotalOrders, total)
	}
	if m.Served+m.Reneged != total {
		t.Fatalf("outcomes %d+%d, want %d", m.Served, m.Reneged, total)
	}
}

func TestEngineRunContextCancellationMidRun(t *testing.T) {
	orders := make([]trace.Order, 50)
	for i := range orders {
		orders[i] = mkOrder(i, float64(i), 10000)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := New(simpleConfig(), orders, []geo.Point{center()})
	batches := 0
	d := funcDispatcher(func(bctx *Context) []Assignment {
		batches++
		if batches == 10 {
			cancel()
		}
		return nil
	})
	_, err := e.Run(ctx, d)
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if batches != 10 {
		t.Fatalf("ran %d batches after cancel, want exactly 10", batches)
	}
}

func TestEngineRunPacedAgainstWallClock(t *testing.T) {
	cfg := simpleConfig()
	cfg.Delta = 5
	cfg.Horizon = 50
	cfg.PaceFactor = 100 // 10 batches x 0.05s wall each
	e := New(cfg, nil, []geo.Point{center()})
	start := time.Now()
	m, err := e.Run(context.Background(), noop{})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if m.Batches != 10 {
		t.Fatalf("batches = %d, want 10", m.Batches)
	}
	// 45 simulated seconds of pacing at 100x => >= ~450ms of wall time
	// (generous lower bound for timer slop).
	if elapsed < 350*time.Millisecond {
		t.Errorf("paced run finished in %v; pacing not applied", elapsed)
	}
}

func TestEngineRunPacingHonorsCancellation(t *testing.T) {
	cfg := simpleConfig()
	cfg.PaceFactor = 0.001 // one batch ~= 50 minutes of wall time
	e := New(cfg, nil, []geo.Point{center()})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.Run(ctx, noop{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation during pacing wait took %v", elapsed)
	}
}

func TestEngineRunDeadlineAlreadyExpired(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(simpleConfig(), nil, []geo.Point{center()})
	if _, err := e.Run(ctx, noop{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
