package sim

import (
	"sync"
	"testing"
	"time"

	"mrvd/internal/geo"
	"mrvd/internal/trace"
)

func storeOrder(id int) trace.Order {
	return trace.Order{
		ID: trace.OrderID(id), PostTime: float64(id), Deadline: float64(id) + 300,
		Pickup:  geo.Point{Lng: -73.97, Lat: 40.75},
		Dropoff: geo.Point{Lng: -73.95, Lat: 40.77},
	}
}

func TestStateStoreFoldsOrderLifecycle(t *testing.T) {
	s := NewStateStore(3)
	o := storeOrder(0)
	s.TrackSubmitted(o)

	v, ok := s.Order(0)
	if !ok || v.State != OrderPending {
		t.Fatalf("tracked order view = %+v, ok=%v", v, ok)
	}
	if v.PostTime != o.PostTime || v.Deadline != o.Deadline {
		t.Errorf("order times not tracked: %+v", v)
	}

	rider := &Rider{Order: o, PickedAt: 42}
	s.OnAssigned(AssignedEvent{Now: 6, Rider: rider, Driver: 2, PickupCost: 36, Revenue: 100, FreeAt: 180, Dest: o.Dropoff, DriverFreeAt: 180})
	v, _ = s.Order(0)
	if v.State != OrderAssigned || v.Driver != 2 || v.AssignedAt != 6 || v.Revenue != 100 {
		t.Fatalf("assigned view = %+v", v)
	}
	// A later expiry event for the same order must not downgrade it.
	s.OnExpired(ExpiredEvent{Now: 9, Rider: rider})
	if v, _ = s.Order(0); v.State != OrderAssigned {
		t.Errorf("terminal state downgraded to %v", v.State)
	}

	st := s.Stats()
	if st.Submitted != 1 || st.Assigned != 1 || st.Expired != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Revenue != 100 || st.PickupSeconds != 36 {
		t.Errorf("accumulators = %+v", st)
	}

	d := s.Drivers()
	if len(d) != 3 {
		t.Fatalf("drivers = %d, want 3 (pre-populated fleet)", len(d))
	}
	if d[2].Served != 1 || !d[2].Busy || d[2].FreeAt != 180 {
		t.Errorf("driver 2 view = %+v", d[2])
	}
	// The batch boundary past FreeAt flips the driver back to idle.
	s.OnBatchStart(BatchStartEvent{Now: 200, Batch: 4, Waiting: 1, Available: 2})
	if d = s.Drivers(); d[2].Busy {
		t.Error("driver still busy after its trip completed")
	}
	if st = s.Stats(); st.Clock != 200 || st.Batch != 4 || st.Waiting != 1 || st.Available != 2 {
		t.Errorf("batch stats = %+v", st)
	}
}

func TestStateStoreBatchGapsWithInjectedClock(t *testing.T) {
	// Batch-gap stats are wall-clock timings; with an injected clock
	// they are exactly computable instead of scheduler-dependent.
	s := NewStateStore(0)
	wall := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return wall })

	gaps := []time.Duration{10 * time.Millisecond, 30 * time.Millisecond, 20 * time.Millisecond}
	s.OnBatchStart(BatchStartEvent{Now: 0, Batch: 0})
	for i, g := range gaps {
		wall = wall.Add(g)
		s.OnBatchStart(BatchStartEvent{Now: float64(i+1) * 2, Batch: i + 1})
	}

	st := s.Stats()
	if st.AvgBatchGapMS != 20 {
		t.Errorf("AvgBatchGapMS = %v, want 20", st.AvgBatchGapMS)
	}
	if st.MaxBatchGapMS != 30 {
		t.Errorf("MaxBatchGapMS = %v, want 30", st.MaxBatchGapMS)
	}
	// Nearest-rank over {10, 20, 30}: p50 -> 2nd, p95/p99 -> 3rd.
	if st.BatchGapP50MS != 20 || st.BatchGapP95MS != 30 || st.BatchGapP99MS != 30 {
		t.Errorf("gap percentiles = %v/%v/%v, want 20/30/30",
			st.BatchGapP50MS, st.BatchGapP95MS, st.BatchGapP99MS)
	}
}

func TestStateStoreEventBeforeTrackMerges(t *testing.T) {
	// The gateway Submit/Track race: the engine can commit an outcome
	// before TrackSubmitted runs. The terminal event wins either way.
	s := NewStateStore(0)
	o := storeOrder(7)
	s.OnExpired(ExpiredEvent{Now: 33, Rider: &Rider{Order: o}})
	s.TrackSubmitted(o)
	v, ok := s.Order(7)
	if !ok || v.State != OrderExpired || v.ExpiredAt != 33 {
		t.Fatalf("view = %+v, ok=%v", v, ok)
	}
	if v.PostTime != o.PostTime {
		t.Errorf("track-after-event did not merge submit data: %+v", v)
	}
	if st := s.Stats(); st.Submitted != 1 || st.Expired != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStateStoreCancelAndDeclineFold(t *testing.T) {
	s := NewStateStore(2)
	o := storeOrder(3)
	s.TrackSubmitted(o)
	rider := &Rider{Order: o}

	// A decline is non-terminal: the order stays pending with the
	// decline on its record, and the driver cools down busy-in-place.
	s.OnDeclined(DeclinedEvent{Now: 12, Rider: rider, Driver: 1, RetryAt: 72})
	v, _ := s.Order(3)
	if v.State != OrderPending || v.Declines != 1 {
		t.Fatalf("declined view = %+v", v)
	}
	d := s.Drivers()
	if d[1].Declines != 1 || !d[1].Busy || d[1].FreeAt != 72 {
		t.Fatalf("declining driver view = %+v", d[1])
	}

	// The rider then cancels: terminal, and a later expiry must not
	// downgrade it.
	s.OnCanceled(CanceledEvent{Now: 30, Rider: rider, Explicit: true})
	v, _ = s.Order(3)
	if v.State != OrderCanceled || v.CanceledAt != 30 {
		t.Fatalf("canceled view = %+v", v)
	}
	s.OnExpired(ExpiredEvent{Now: 33, Rider: rider})
	if v, _ = s.Order(3); v.State != OrderCanceled {
		t.Fatalf("cancel downgraded to %v", v.State)
	}
	if st := s.Stats(); st.Canceled != 1 || st.Declined != 1 || st.Expired != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStateStoreRepositionFolds(t *testing.T) {
	s := NewStateStore(1)
	s.OnRepositioned(RepositionedEvent{
		Now: 10, Driver: 0,
		From: geo.Point{Lng: -74, Lat: 40.7}, To: geo.Point{Lng: -73.9, Lat: 40.8},
		Cost: 120, ArriveAt: 130,
	})
	d := s.Drivers()
	if d[0].Repositions != 1 || !d[0].Busy || d[0].FreeAt != 130 {
		t.Errorf("driver view = %+v", d[0])
	}
	if got := d[0].Pos; got.Lng != -73.9 {
		t.Errorf("driver position not updated: %+v", got)
	}
	if st := s.Stats(); st.Repositioned != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestStateStoreConcurrentReadsDuringEvents runs readers against the
// store while an event stream mutates it — the gateway's actual access
// pattern; the race detector patrols this test.
func TestStateStoreConcurrentReadsDuringEvents(t *testing.T) {
	s := NewStateStore(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Orders()
				s.Drivers()
				s.Stats()
				s.Order(3)
			}
		}()
	}
	for i := 0; i < 500; i++ {
		o := storeOrder(i)
		s.TrackSubmitted(o)
		s.OnBatchStart(BatchStartEvent{Now: float64(i), Batch: i})
		if i%2 == 0 {
			s.OnAssigned(AssignedEvent{Now: float64(i), Rider: &Rider{Order: o}, Driver: DriverID(i % 8), FreeAt: float64(i + 50)})
		} else {
			s.OnExpired(ExpiredEvent{Now: float64(i), Rider: &Rider{Order: o}})
		}
	}
	close(stop)
	wg.Wait()
	st := s.Stats()
	if st.Submitted != 500 || st.Assigned != 250 || st.Expired != 250 {
		t.Errorf("stats after stream = %+v", st)
	}
	if got := len(s.Orders()); got != 500 {
		t.Errorf("orders = %d, want 500", got)
	}
}
