package sim

import (
	"mrvd/internal/geo"
	"mrvd/internal/trace"
)

// Observer receives engine lifecycle events as they happen, so metrics
// exporters, live dashboards and replay logs can subscribe to a run
// instead of scraping Metrics after the fact. Callbacks run inline on
// the engine goroutine between batches: they must be fast and must not
// retain the *Rider/*Driver pointers beyond the call if the run is still
// in progress (the engine keeps mutating them).
type Observer interface {
	// OnBatchStart fires once per batch, after order admission and
	// reneging but before the dispatcher runs.
	OnBatchStart(e BatchStartEvent)
	// OnAssigned fires for every committed (rider, driver) assignment.
	OnAssigned(e AssignedEvent)
	// OnExpired fires when a waiting rider reneges past its deadline.
	OnExpired(e ExpiredEvent)
	// OnCanceled fires when a waiting rider cancels its order before
	// assignment — stochastically via the scenario's patience model, or
	// explicitly through a CancelableSource (ServeHandle.Cancel, the
	// gateway's DELETE /v1/orders/{id}).
	OnCanceled(e CanceledEvent)
	// OnDeclined fires when a committed assignment is declined by the
	// driver under the scenario's decline model: the rider returns to
	// the waiting pool (deadline unchanged) and the driver takes a
	// cooldown before rejoining. For a declined pooled insertion the
	// whole insertion is released — the plan is untouched and the driver
	// merely refuses further insertions until RetryAt.
	OnDeclined(e DeclinedEvent)
	// OnRepositioned fires when an idle driver starts a cruise proposed
	// by the configured Repositioner.
	OnRepositioned(e RepositionedEvent)
	// OnPickedUp fires when a pooled driver reaches a pickup stop on its
	// route plan. Only emitted with pooling enabled — single-trip runs
	// fold the pickup into OnAssigned's PickedAt.
	OnPickedUp(e PickedUpEvent)
	// OnDroppedOff fires when a pooled driver completes a rider's
	// dropoff stop. Only emitted with pooling enabled.
	OnDroppedOff(e DroppedOffEvent)
}

// BatchStartEvent snapshots a batch boundary.
type BatchStartEvent struct {
	Now       float64
	Batch     int // 0-based batch index
	Waiting   int // riders in the waiting set
	Available int // assignable drivers
}

// AssignedEvent records one committed assignment.
type AssignedEvent struct {
	Now        float64
	Rider      *Rider
	Driver     DriverID
	PickupCost float64 // seconds until the rider's pickup (deadhead for a solo trip)
	Revenue    float64 // the trip cost, the pair's revenue at alpha=1
	FreeAt     float64 // when the rider's trip completes (the dropoff ETA)
	// Pooling context. Shared marks an insertion into an active route
	// plan; DetourSeconds is the rider's planned detour at commit;
	// Onboard and Stops snapshot the driver's plan after the commit.
	// Dest and DriverFreeAt are the driver's end-of-plan position and
	// completion time — for a solo trip, the rider's dropoff and FreeAt.
	Shared        bool
	DetourSeconds float64
	Onboard       int
	Stops         int
	Dest          geo.Point
	DriverFreeAt  float64
}

// ExpiredEvent records one rider reneging.
type ExpiredEvent struct {
	Now   float64
	Rider *Rider
}

// CanceledEvent records one rider-initiated cancellation of a waiting
// order. Explicit marks cancels requested through a CancelableSource
// (as opposed to the scenario's stochastic patience model).
type CanceledEvent struct {
	Now      float64
	Rider    *Rider
	Explicit bool
}

// DeclinedEvent records one driver declining a committed assignment.
// The rider stays in the waiting pool; the driver is unassignable until
// RetryAt.
type DeclinedEvent struct {
	Now     float64
	Rider   *Rider
	Driver  DriverID
	RetryAt float64 // when the declining driver's cooldown ends
}

// RepositionedEvent records one idle-driver cruise.
type RepositionedEvent struct {
	Now      float64
	Driver   DriverID
	From     geo.Point
	To       geo.Point
	Cost     float64 // travel seconds of the cruise
	ArriveAt float64 // when the driver becomes assignable at To
}

// PickedUpEvent records a pooled driver consuming a pickup stop.
type PickedUpEvent struct {
	Now       float64
	At        float64 // the stop's committed arrival time (<= Now)
	Order     trace.OrderID
	Driver    DriverID
	Onboard   int // riders in the car after this pickup
	Remaining int // stops left on the plan
}

// DroppedOffEvent records a pooled driver completing a dropoff stop.
type DroppedOffEvent struct {
	Now    float64
	At     float64 // the stop's committed arrival time (<= Now)
	Order  trace.OrderID
	Driver DriverID
	// Shared marks a rider that was pool-inserted; DetourSeconds is
	// their realized detour versus the direct-trip estimate.
	Shared        bool
	DetourSeconds float64
	Onboard       int // riders still in the car
	Remaining     int // stops left on the plan
}

// Observers fans events out to several observers in order.
type Observers []Observer

// OnBatchStart implements Observer.
func (os Observers) OnBatchStart(e BatchStartEvent) {
	for _, o := range os {
		o.OnBatchStart(e)
	}
}

// OnAssigned implements Observer.
func (os Observers) OnAssigned(e AssignedEvent) {
	for _, o := range os {
		o.OnAssigned(e)
	}
}

// OnExpired implements Observer.
func (os Observers) OnExpired(e ExpiredEvent) {
	for _, o := range os {
		o.OnExpired(e)
	}
}

// OnCanceled implements Observer.
func (os Observers) OnCanceled(e CanceledEvent) {
	for _, o := range os {
		o.OnCanceled(e)
	}
}

// OnDeclined implements Observer.
func (os Observers) OnDeclined(e DeclinedEvent) {
	for _, o := range os {
		o.OnDeclined(e)
	}
}

// OnRepositioned implements Observer.
func (os Observers) OnRepositioned(e RepositionedEvent) {
	for _, o := range os {
		o.OnRepositioned(e)
	}
}

// OnPickedUp implements Observer.
func (os Observers) OnPickedUp(e PickedUpEvent) {
	for _, o := range os {
		o.OnPickedUp(e)
	}
}

// OnDroppedOff implements Observer.
func (os Observers) OnDroppedOff(e DroppedOffEvent) {
	for _, o := range os {
		o.OnDroppedOff(e)
	}
}

// ObserverFuncs adapts free functions to Observer; nil fields are
// skipped, so callers subscribe to only the events they care about.
type ObserverFuncs struct {
	BatchStart   func(BatchStartEvent)
	Assigned     func(AssignedEvent)
	Expired      func(ExpiredEvent)
	Canceled     func(CanceledEvent)
	Declined     func(DeclinedEvent)
	Repositioned func(RepositionedEvent)
	PickedUp     func(PickedUpEvent)
	DroppedOff   func(DroppedOffEvent)
}

// OnBatchStart implements Observer.
func (f ObserverFuncs) OnBatchStart(e BatchStartEvent) {
	if f.BatchStart != nil {
		f.BatchStart(e)
	}
}

// OnAssigned implements Observer.
func (f ObserverFuncs) OnAssigned(e AssignedEvent) {
	if f.Assigned != nil {
		f.Assigned(e)
	}
}

// OnExpired implements Observer.
func (f ObserverFuncs) OnExpired(e ExpiredEvent) {
	if f.Expired != nil {
		f.Expired(e)
	}
}

// OnCanceled implements Observer.
func (f ObserverFuncs) OnCanceled(e CanceledEvent) {
	if f.Canceled != nil {
		f.Canceled(e)
	}
}

// OnDeclined implements Observer.
func (f ObserverFuncs) OnDeclined(e DeclinedEvent) {
	if f.Declined != nil {
		f.Declined(e)
	}
}

// OnRepositioned implements Observer.
func (f ObserverFuncs) OnRepositioned(e RepositionedEvent) {
	if f.Repositioned != nil {
		f.Repositioned(e)
	}
}

// OnPickedUp implements Observer.
func (f ObserverFuncs) OnPickedUp(e PickedUpEvent) {
	if f.PickedUp != nil {
		f.PickedUp(e)
	}
}

// OnDroppedOff implements Observer.
func (f ObserverFuncs) OnDroppedOff(e DroppedOffEvent) {
	if f.DroppedOff != nil {
		f.DroppedOff(e)
	}
}
