package sim

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/trace"
)

// randomScenario builds a random but structurally valid trace and fleet.
func randomScenario(rng *rand.Rand) ([]trace.Order, []geo.Point) {
	box := geo.NYCBBox
	randPoint := func() geo.Point {
		return geo.Point{
			Lng: box.MinLng + rng.Float64()*(box.MaxLng-box.MinLng),
			Lat: box.MinLat + rng.Float64()*(box.MaxLat-box.MinLat),
		}
	}
	n := 20 + rng.Intn(80)
	orders := make([]trace.Order, n)
	for i := range orders {
		post := rng.Float64() * 3000
		orders[i] = trace.Order{
			ID:       trace.OrderID(i),
			PostTime: post,
			Pickup:   randPoint(),
			Dropoff:  randPoint(),
			Deadline: post + 30 + rng.Float64()*300,
		}
	}
	drivers := make([]geo.Point, 3+rng.Intn(20))
	for i := range drivers {
		drivers[i] = randPoint()
	}
	return orders, drivers
}

// checkRunInvariants verifies the engine's global invariants after a run.
func checkRunInvariants(t *testing.T, e *Engine, m *Metrics) {
	t.Helper()
	// Terminal accounting.
	if m.Served+m.Reneged+m.Canceled != m.TotalOrders {
		t.Fatalf("served %d + reneged %d + canceled %d != total %d",
			m.Served, m.Reneged, m.Canceled, m.TotalOrders)
	}
	// Travel noise decouples realized times from the planned estimates:
	// revenue then sums realized trips and a committed pickup may land
	// past the deadline (the late-pickup risk the scenario models), so
	// those two checks only hold noise-free.
	noisy := len(m.TravelRecords) > 0
	// Revenue equals the sum of served trip costs, and every served
	// rider was picked up before its deadline.
	revenue := 0.0
	served, canceled := 0, 0
	for _, r := range e.Riders() {
		switch r.Status {
		case AssignedStatus:
			served++
			revenue += r.TripCost
			if !noisy && r.PickedAt > r.Order.Deadline+1e-9 {
				t.Fatalf("rider %d picked at %.1f after deadline %.1f",
					r.Order.ID, r.PickedAt, r.Order.Deadline)
			}
			if r.PickedAt < r.Order.PostTime {
				t.Fatalf("rider %d picked before posting", r.Order.ID)
			}
		case CanceledStatus:
			canceled++
		case WaitingStatus:
			t.Fatalf("rider %d still waiting after the horizon", r.Order.ID)
		}
	}
	if served != m.Served {
		t.Fatalf("rider statuses count %d served, metrics say %d", served, m.Served)
	}
	if canceled != m.Canceled {
		t.Fatalf("rider statuses count %d canceled, metrics say %d", canceled, m.Canceled)
	}
	if !noisy && math.Abs(revenue-m.Revenue) > 1e-6 {
		t.Fatalf("revenue %v != sum of served trips %v", m.Revenue, revenue)
	}
	// Per-driver service counts sum to the served total.
	driverServed := 0
	for _, d := range e.Drivers() {
		driverServed += d.Served
	}
	if driverServed != m.Served {
		t.Fatalf("driver ledger %d != served %d", driverServed, m.Served)
	}
	// Idle records are non-negative and closed.
	for _, rec := range m.IdleRecords {
		if math.IsNaN(rec.Realized) || rec.Realized < -1e-9 {
			t.Fatalf("bad idle record %+v", rec)
		}
	}
}

func TestSimulationInvariantsUnderRandomScenarios(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		orders, drivers := randomScenario(rng)
		cfg := Config{Delta: 5, TC: 600, Horizon: 4000}
		e := New(cfg, orders, drivers)
		m, err := e.Run(context.Background(), takeAll{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkRunInvariants(t, e, m)
	}
}

func TestSimulationInvariantsWithRepositioningAndShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		orders, drivers := randomScenario(rng)
		shifts := make([]Shift, len(drivers))
		for i := range shifts {
			if rng.Intn(2) == 0 {
				shifts[i] = Shift{JoinAt: rng.Float64() * 1000, LeaveAt: 2000 + rng.Float64()*2000}
			}
		}
		cfg := Config{
			Delta: 5, TC: 600, Horizon: 4000,
			Shifts:          shifts,
			Repositioner:    randomRepositioner{rng: rand.New(rand.NewSource(int64(trial)))},
			RepositionAfter: 120,
		}
		e := New(cfg, orders, drivers)
		m, err := e.Run(context.Background(), takeAll{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkRunInvariants(t, e, m)
	}
}

// randomRepositioner occasionally proposes a random nearby move.
type randomRepositioner struct{ rng *rand.Rand }

func (r randomRepositioner) Target(ctx *Context, d *Driver, region geo.RegionID) (geo.Point, bool) {
	if r.rng.Float64() < 0.7 {
		return geo.Point{}, false
	}
	return geo.Point{
		Lng: d.Pos.Lng + (r.rng.Float64()-0.5)*0.02,
		Lat: d.Pos.Lat + (r.rng.Float64()-0.5)*0.02,
	}, true
}

func TestSimulationInvariantsAcrossDispatcherStyles(t *testing.T) {
	// The engine's invariants must hold regardless of dispatcher
	// behaviour: empty, greedy, or adversarially partial.
	rng := rand.New(rand.NewSource(23))
	orders, drivers := randomScenario(rng)
	dispatchers := []Dispatcher{
		noop{},
		takeAll{},
		funcDispatcher(func(ctx *Context) []Assignment {
			// Serve only every other batch.
			if int(ctx.Now/5)%2 == 0 || len(ctx.Pairs) == 0 {
				return nil
			}
			p := ctx.Pairs[0]
			return []Assignment{{R: p.R, D: p.D}}
		}),
	}
	for i, d := range dispatchers {
		e := New(Config{Delta: 5, TC: 600, Horizon: 4000}, orders, drivers)
		m, err := e.Run(context.Background(), d)
		if err != nil {
			t.Fatalf("dispatcher %d: %v", i, err)
		}
		checkRunInvariants(t, e, m)
	}
}
