package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"text/tabwriter"

	"mrvd/internal/core"
	"mrvd/internal/geo"
	"mrvd/internal/predict"
	"mrvd/internal/sim"
	"mrvd/internal/stats"
	"mrvd/internal/workload"
)

func init() {
	register(Experiment{ID: "fig5", Title: "Spatial distribution of pickups, 8:00-8:45 AM (ASCII density)", Run: runFig5})
	register(Experiment{ID: "fig6", Title: "Predicted vs real idle time per region", Run: runFig6})
	register(Experiment{ID: "fig7", Title: "Effect of the number of drivers n (total revenue, batch time)", Run: runFig7})
	register(Experiment{ID: "fig8", Title: "Effect of the batch interval Delta (total revenue, batch time)", Run: runFig8})
	register(Experiment{ID: "fig9", Title: "Effect of the time window t_c (total revenue, batch time)", Run: runFig9})
	register(Experiment{ID: "fig10", Title: "Effect of the base waiting time tau (total revenue, batch time)", Run: runFig10})
	register(Experiment{ID: "fig11", Title: "Observed vs expected order-count histogram (chi-square data)", Run: runFig11})
	register(Experiment{ID: "fig12", Title: "Observed vs expected driver-count histogram (chi-square data)", Run: runFig12})
	register(Experiment{ID: "fig13", Title: "Total served orders: SHORT vs RAND/NEAR/POLAR across n, t_c, Delta, tau", Run: runFig13})
}

// series is one plotted line of Figures 7-10.
type series struct {
	label string
	alg   string
	mode  core.PredictionMode
	model func(seed int64) predict.Predictor // nil unless mode == PredictModel
}

// paperSeries returns the paper's plotted lines in legend order. The -P
// variants use STNet (the DeepST substitute); -R uses real demand.
func paperSeries(includeUpper bool) []series {
	stnet := func(int64) predict.Predictor { return &predict.STNet{} }
	s := []series{
		{label: "RAND", alg: "RAND", mode: core.PredictNone},
		{label: "LTG", alg: "LTG", mode: core.PredictNone},
		{label: "NEAR", alg: "NEAR", mode: core.PredictNone},
		{label: "POLAR", alg: "POLAR", mode: core.PredictModel, model: stnet},
		{label: "IRG-P", alg: "IRG", mode: core.PredictModel, model: stnet},
		{label: "IRG-R", alg: "IRG", mode: core.PredictOracle},
		{label: "LS-P", alg: "LS", mode: core.PredictModel, model: stnet},
		{label: "LS-R", alg: "LS", mode: core.PredictOracle},
	}
	if includeUpper {
		s = append(s, series{label: "UPPER", alg: "UPPER", mode: core.PredictNone})
	}
	return s
}

// sweep runs a set of series over parameter values, printing one revenue
// table and one batch-time table with a column per value. makeOpts must
// produce fully-specified options for (value, seed); runners sharing a
// city and seed share history and trained predictors.
func sweep(ctx context.Context, cfg Config, w io.Writer, paramName string, values []string, makeOpts func(vi int, seed int64) core.Options, ss []series, metric func(*sim.Metrics) float64, metricName string) error {
	cfg = cfg.withDefaults()
	results := make([][]float64, len(ss)) // [series][value]
	batch := make([][]float64, len(ss))
	for i := range ss {
		results[i] = make([]float64, len(values))
		batch[i] = make([]float64, len(values))
	}
	type hkey struct {
		city *workload.City
		seed int64
	}
	hcache := map[hkey]*core.Runner{}
	for vi := range values {
		for seed := int64(1); seed <= int64(cfg.Seeds); seed++ {
			opts := makeOpts(vi, seed)
			base, ok := hcache[hkey{opts.City, seed}]
			for si, s := range ss {
				runner := core.NewRunner(opts)
				if ok {
					runner.ShareFrom(base)
				}
				d, err := core.NewDispatcher(s.alg, seed)
				if err != nil {
					return err
				}
				var model predict.Predictor
				if s.model != nil {
					model = s.model(seed)
				}
				m, err := runner.Run(ctx, d, s.mode, model)
				if err != nil {
					return fmt.Errorf("%s %s=%s seed %d: %w", s.label, paramName, values[vi], seed, err)
				}
				results[si][vi] += metric(m) / float64(cfg.Seeds)
				batch[si][vi] += m.AvgBatchSeconds() / float64(cfg.Seeds)
				// Keep the history/trained models for subsequent series
				// and values with the same city+seed.
				if !ok {
					base = runner
					hcache[hkey{opts.City, seed}] = base
					ok = true
				} else {
					base.ShareFrom(runner)
				}
			}
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s (%s)", metricName, paramName)
	for _, v := range values {
		fmt.Fprintf(tw, "\t%s", v)
	}
	fmt.Fprintln(tw)
	for si, s := range ss {
		fmt.Fprintf(tw, "%s", s.label)
		for vi := range values {
			fmt.Fprintf(tw, "\t%.4g", results[si][vi])
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "batch time ms (%s)", paramName)
	for _, v := range values {
		fmt.Fprintf(tw, "\t%s", v)
	}
	fmt.Fprintln(tw)
	for si, s := range ss {
		fmt.Fprintf(tw, "%s", s.label)
		for vi := range values {
			fmt.Fprintf(tw, "\t%.3f", 1000*batch[si][vi])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func revenueMetric(m *sim.Metrics) float64 { return m.Revenue }
func servedMetric(m *sim.Metrics) float64  { return float64(m.Served) }

func runFig7(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	city := cfg.city(120)
	paperNs := []int{1000, 2000, 3000, 4000, 5000}
	labels := make([]string, len(paperNs))
	for i, n := range paperNs {
		labels[i] = fmt.Sprintf("%dK", n/1000)
	}
	return sweep(ctx, cfg, w, "n", labels, func(vi int, seed int64) core.Options {
		return core.Options{City: city, NumDrivers: cfg.Drivers(paperNs[vi]), Seed: seed}
	}, paperSeries(true), revenueMetric, "total revenue")
}

func runFig8(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	city := cfg.city(120)
	deltas := []float64{3, 5, 10, 20, 30}
	labels := make([]string, len(deltas))
	for i, d := range deltas {
		labels[i] = fmt.Sprintf("%gs", d)
	}
	return sweep(ctx, cfg, w, "Delta", labels, func(vi int, seed int64) core.Options {
		return core.Options{City: city, NumDrivers: cfg.Drivers(1000), Delta: deltas[vi], Seed: seed}
	}, paperSeries(false), revenueMetric, "total revenue")
}

func runFig9(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	city := cfg.city(120)
	tcs := []float64{5, 10, 15, 20, 40, 60, 80, 100} // minutes
	labels := make([]string, len(tcs))
	for i, tc := range tcs {
		labels[i] = fmt.Sprintf("%gm", tc)
	}
	return sweep(ctx, cfg, w, "t_c", labels, func(vi int, seed int64) core.Options {
		return core.Options{City: city, NumDrivers: cfg.Drivers(1000), TC: tcs[vi] * 60, Seed: seed}
	}, paperSeries(false), revenueMetric, "total revenue")
}

func runFig10(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	taus := []float64{60, 120, 180, 240, 300}
	labels := make([]string, len(taus))
	cities := make([]*workload.City, len(taus))
	for i, tau := range taus {
		labels[i] = fmt.Sprintf("%gs", tau)
		cities[i] = cfg.city(tau) // tau changes order deadlines, hence the city
	}
	return sweep(ctx, cfg, w, "tau", labels, func(vi int, seed int64) core.Options {
		return core.Options{City: cities[vi], NumDrivers: cfg.Drivers(1000), Seed: seed}
	}, paperSeries(false), revenueMetric, "total revenue")
}

func runFig13(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	ss := []series{
		{label: "RAND", alg: "RAND", mode: core.PredictNone},
		{label: "NEAR", alg: "NEAR", mode: core.PredictNone},
		{label: "POLAR", alg: "POLAR", mode: core.PredictOracle},
		{label: "SHORT", alg: "SHORT", mode: core.PredictOracle},
	}
	city := cfg.city(120)

	fmt.Fprintln(w, "(a) served orders vs number of drivers n")
	paperNs := []int{1000, 2000, 3000, 4000, 5000}
	nLabels := make([]string, len(paperNs))
	for i, n := range paperNs {
		nLabels[i] = fmt.Sprintf("%dK", n/1000)
	}
	if err := sweep(ctx, cfg, w, "n", nLabels, func(vi int, seed int64) core.Options {
		return core.Options{City: city, NumDrivers: cfg.Drivers(paperNs[vi]), Seed: seed}
	}, ss, servedMetric, "served orders"); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n(b) served orders vs time window t_c")
	tcs := []float64{5, 10, 15, 20, 40, 60, 80, 100}
	tcLabels := make([]string, len(tcs))
	for i, tc := range tcs {
		tcLabels[i] = fmt.Sprintf("%gm", tc)
	}
	if err := sweep(ctx, cfg, w, "t_c", tcLabels, func(vi int, seed int64) core.Options {
		return core.Options{City: city, NumDrivers: cfg.Drivers(1000), TC: tcs[vi] * 60, Seed: seed}
	}, ss, servedMetric, "served orders"); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n(c) served orders vs batch interval Delta")
	deltas := []float64{3, 5, 10, 20, 30}
	dLabels := make([]string, len(deltas))
	for i, d := range deltas {
		dLabels[i] = fmt.Sprintf("%gs", d)
	}
	if err := sweep(ctx, cfg, w, "Delta", dLabels, func(vi int, seed int64) core.Options {
		return core.Options{City: city, NumDrivers: cfg.Drivers(1000), Delta: deltas[vi], Seed: seed}
	}, ss, servedMetric, "served orders"); err != nil {
		return err
	}

	fmt.Fprintln(w, "\n(d) served orders vs base waiting time tau")
	taus := []float64{60, 120, 180, 240, 300}
	tLabels := make([]string, len(taus))
	cities := make([]*workload.City, len(taus))
	for i, tau := range taus {
		tLabels[i] = fmt.Sprintf("%gs", tau)
		cities[i] = cfg.city(tau)
	}
	return sweep(ctx, cfg, w, "tau", tLabels, func(vi int, seed int64) core.Options {
		return core.Options{City: cities[vi], NumDrivers: cfg.Drivers(1000), Seed: seed}
	}, ss, servedMetric, "served orders")
}

// densityRamp maps a normalized density to an ASCII shade.
const densityRamp = " .:-=+*#%@"

func runFig5(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	city := cfg.city(120)
	rng := rand.New(rand.NewSource(cfg.CitySeed))
	orders := city.GenerateDay(0, rng)
	grid := city.Grid()
	counts := make([]int, grid.NumRegions())
	max := 0
	for _, o := range orders {
		if o.PostTime < 8*3600 || o.PostTime > 8*3600+45*60 {
			continue
		}
		r := grid.Region(o.Pickup)
		if r == geo.InvalidRegion {
			continue
		}
		counts[r]++
		if counts[r] > max {
			max = counts[r]
		}
	}
	fmt.Fprintf(w, "pickup density 8:00-8:45 (max %d orders per region; north at top)\n", max)
	for row := grid.Rows() - 1; row >= 0; row-- {
		for col := 0; col < grid.Cols(); col++ {
			c := counts[row*grid.Cols()+col]
			shade := 0
			if max > 0 {
				shade = c * (len(densityRamp) - 1) / max
			}
			fmt.Fprintf(w, "%c%c", densityRamp[shade], densityRamp[shade])
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runFig6(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	city := cfg.city(120)
	type agg struct {
		est, real float64
		n         int
	}
	grid := city.Grid()
	perRegion := make([]agg, grid.NumRegions())
	for seed := int64(1); seed <= int64(cfg.Seeds); seed++ {
		runner := core.NewRunner(core.Options{City: city, NumDrivers: cfg.Drivers(3000), Seed: seed})
		d, err := core.NewDispatcher("IRG", seed)
		if err != nil {
			return err
		}
		m, err := runner.Run(ctx, d, core.PredictOracle, nil)
		if err != nil {
			return err
		}
		for _, rec := range m.IdleRecords {
			if math.IsNaN(rec.Estimate) || math.IsInf(rec.Estimate, 0) {
				continue
			}
			a := &perRegion[rec.Region]
			a.est += rec.Estimate
			a.real += rec.Realized
			a.n++
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "region\trejoins\tpredicted idle (s)\treal idle (s)\n")
	var se, sr []float64
	for r, a := range perRegion {
		if a.n < 20 {
			continue // too few rejoins for a stable mean
		}
		est := a.est / float64(a.n)
		real := a.real / float64(a.n)
		se = append(se, est)
		sr = append(sr, real)
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\n", regionName(grid, geo.RegionID(r)), a.n, est, real)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if len(se) >= 2 {
		fmt.Fprintf(w, "pearson correlation(predicted, real) = %.3f over %d regions\n",
			correlation(se, sr), len(se))
	}
	return nil
}

// correlation returns the Pearson correlation coefficient.
func correlation(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// runHistogram renders Figures 11/12: observed vs expected per-minute
// count distributions in the two test regions at 7 and 8 AM.
func runHistogram(ctx context.Context, cfg Config, w io.Writer, dropoffs bool) error {
	cfg = cfg.withDefaults()
	cfg.Scale = 1.0 // sampling only, no simulation; match the paper's volume
	city := cfg.city(120)
	r1, r2 := chiSquareRegions(cfg)
	rng := rand.New(rand.NewSource(cfg.CitySeed + 9))
	for _, cell := range []struct {
		label  string
		region int
		hour   int
	}{
		{"region 1", r1, 7}, {"region 1", r1, 8},
		{"region 2", r2, 7}, {"region 2", r2, 8},
	} {
		var samples []int
		for day := 0; day < 21; day++ {
			if dropoffs {
				samples = append(samples, city.PerMinuteDropoffCounts(0, cell.hour*60, 10, cell.region, rng)...)
			} else {
				samples = append(samples, city.PerMinuteCounts(0, cell.hour*60, 10, cell.region, rng)...)
			}
		}
		bins := statsHistogram(samples)
		fmt.Fprintf(w, "%s, %d:00 AM (%d samples)\n", cell.label, cell.hour, len(samples))
		for _, b := range bins {
			fmt.Fprintf(w, "  %3d~%-3d observed=%-4d expected=%.1f\n", b.Lo, b.Hi, b.Observed, b.Expected)
		}
	}
	return nil
}

func runFig11(ctx context.Context, cfg Config, w io.Writer) error {
	return runHistogram(ctx, cfg, w, false)
}
func runFig12(ctx context.Context, cfg Config, w io.Writer) error {
	return runHistogram(ctx, cfg, w, true)
}

// statsHistogram buckets samples with an adaptive bin width (the paper
// uses width 10 at full scale; scaled counts need narrower bins).
func statsHistogram(samples []int) []stats.HistogramBin {
	minV, maxV := samples[0], samples[0]
	for _, s := range samples {
		if s < minV {
			minV = s
		}
		if s > maxV {
			maxV = s
		}
	}
	width := (maxV - minV) / 6
	if width < 1 {
		width = 1
	}
	return stats.PoissonHistogram(samples, width)
}
