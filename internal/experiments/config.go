package experiments

import (
	"fmt"
	"io"
	"sort"

	"mrvd/internal/core"
	"mrvd/internal/predict"
	"mrvd/internal/sim"
	"mrvd/internal/workload"
)

// paperOrdersPerDay is the NYC test day's order volume (Section 6.1).
const paperOrdersPerDay = 282255

// paperDriverUnit is the paper's "1K" fleet step.
const paperDriverUnit = 1000

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies the paper's order volume and fleet sizes.
	// Default 0.25.
	Scale float64
	// Seeds is how many problem instances are averaged per data point
	// (the paper uses 10). Default 3.
	Seeds int
	// CitySeed fixes the synthetic city's structure.
	CitySeed int64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.25
	}
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if c.CitySeed == 0 {
		c.CitySeed = 31
	}
	return c
}

// Orders returns the scaled daily order volume.
func (c Config) Orders() int { return int(float64(paperOrdersPerDay)*c.Scale + 0.5) }

// Drivers converts a paper fleet size ("1K" = 1000) to the scaled count.
func (c Config) Drivers(paperN int) int {
	n := int(float64(paperN)*c.Scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// city builds the experiment city at the configured scale.
func (c Config) city(baseWait float64) *workload.City {
	return workload.NewCity(workload.CityConfig{
		OrdersPerDay:    c.Orders(),
		BaseWaitSeconds: baseWait,
		Seed:            c.CitySeed,
	})
}

// runPoint executes one (algorithm, options) data point averaged over
// the configured instance seeds, returning mean revenue, mean served
// count, and mean per-batch wall time in seconds.
func (c Config) runPoint(opts core.Options, alg string, mode core.PredictionMode, model predict.Predictor) (revenue, served, batchSec float64, err error) {
	for seed := int64(1); seed <= int64(c.Seeds); seed++ {
		o := opts
		o.Seed = seed
		runner := core.NewRunner(o)
		d, derr := core.NewDispatcher(alg, seed)
		if derr != nil {
			return 0, 0, 0, derr
		}
		var m *sim.Metrics
		m, err = runner.Run(d, mode, model)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("%s seed %d: %w", alg, seed, err)
		}
		revenue += m.Revenue
		served += float64(m.Served)
		batchSec += m.AvgBatchSeconds()
	}
	n := float64(c.Seeds)
	return revenue / n, served / n, batchSec / n, nil
}

// Experiment is one registered regenerator.
type Experiment struct {
	// ID is the paper artifact id ("table3", "fig7", "ablation-reneging").
	ID string
	// Title describes what the artifact shows.
	Title string
	// Run writes the regenerated table to w.
	Run func(cfg Config, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// Lookup returns a registered experiment.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs lists registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
