package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"mrvd/internal/core"
	"mrvd/internal/predict"
	"mrvd/internal/workload"
)

// PaperOrdersPerDay is the NYC test day's order volume (Section 6.1) —
// the unit every Scale knob in this package and in experiments/matrix
// multiplies.
const PaperOrdersPerDay = 282255

// paperDriverUnit is the paper's "1K" fleet step.
const paperDriverUnit = 1000

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies the paper's order volume and fleet sizes.
	// Default 0.25.
	Scale float64
	// Seeds is how many problem instances are averaged per data point
	// (the paper uses 10). Default 3.
	Seeds int
	// CitySeed fixes the synthetic city's structure.
	CitySeed int64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.25
	}
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if c.CitySeed == 0 {
		c.CitySeed = 31
	}
	return c
}

// Orders returns the scaled daily order volume.
func (c Config) Orders() int { return int(float64(PaperOrdersPerDay)*c.Scale + 0.5) }

// Drivers converts a paper fleet size ("1K" = 1000) to the scaled count.
func (c Config) Drivers(paperN int) int {
	n := int(float64(paperN)*c.Scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// city builds the experiment city at the configured scale.
func (c Config) city(baseWait float64) *workload.City {
	return workload.NewCity(workload.CityConfig{
		OrdersPerDay:    c.Orders(),
		BaseWaitSeconds: baseWait,
		Seed:            c.CitySeed,
	})
}

// seedList returns the instance seeds 1..Seeds of a data point.
func (c Config) seedList() []int64 {
	seeds := make([]int64, c.Seeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// runPoint executes one (algorithm, options) data point averaged over
// the configured instance seeds via core.Sweep, returning mean revenue,
// mean served count, and mean per-batch wall time in seconds.
func (c Config) runPoint(ctx context.Context, opts core.Options, alg string, mode core.PredictionMode, model func() predict.Predictor) (revenue, served, batchSec float64, err error) {
	results, err := core.Sweep(ctx, opts, core.SweepSpec{
		Algorithms: []string{alg},
		Seeds:      c.seedList(),
		Fleets:     []int{opts.WithDefaults().NumDrivers},
		// Sequential on purpose: callers report the per-batch wall time,
		// and parallel cells would inflate it with CPU contention.
		Workers: 1,
		Mode:    mode,
		Model:   model,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	for _, r := range results {
		if r.Err != nil {
			return 0, 0, 0, fmt.Errorf("%s seed %d: %w", alg, r.Seed, r.Err)
		}
		revenue += r.Metrics.Revenue
		served += float64(r.Metrics.Served)
		batchSec += r.Metrics.AvgBatchSeconds()
	}
	n := float64(c.Seeds)
	return revenue / n, served / n, batchSec / n, nil
}

// Experiment is one registered regenerator.
type Experiment struct {
	// ID is the paper artifact id ("table3", "fig7", "ablation-reneging").
	ID string
	// Title describes what the artifact shows.
	Title string
	// Run writes the regenerated table to w.
	Run func(ctx context.Context, cfg Config, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// Lookup returns a registered experiment.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// IDs lists registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
