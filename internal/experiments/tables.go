package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"text/tabwriter"

	"mrvd/internal/core"
	"mrvd/internal/geo"
	"mrvd/internal/predict"
	"mrvd/internal/stats"
	"mrvd/internal/workload"
)

func init() {
	register(Experiment{ID: "table3", Title: "Results of the estimated idle time (MAE, RMSE%, real RMSE) vs fleet size", Run: runTable3})
	register(Experiment{ID: "table4", Title: "Effect of prediction methods on total revenue (IRG/LS/POLAR x HA/LR/GBRT/STNet/Real)", Run: runTable4})
	register(Experiment{ID: "table6", Title: "Accuracy of demand prediction methods (RMSE%, real RMSE)", Run: runTable6})
	register(Experiment{ID: "table7", Title: "Chi-square tests: order counts are Poisson", Run: runTable7})
	register(Experiment{ID: "table8", Title: "Chi-square tests: rejoined-driver counts are Poisson", Run: runTable8})
}

// table3DriverSteps mirrors the paper's 1K-8K sweep.
var table3DriverSteps = []int{1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000}

func runTable3(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	city := cfg.city(120)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "#Drivers\tMAE (s)\tRMSE (%%)\tReal RMSE (s)\trecords\n")
	for _, paperN := range table3DriverSteps {
		var est, real []float64
		for seed := int64(1); seed <= int64(cfg.Seeds); seed++ {
			runner := core.NewRunner(core.Options{
				City: city, NumDrivers: cfg.Drivers(paperN), Seed: seed,
			})
			d, err := core.NewDispatcher("IRG", seed)
			if err != nil {
				return err
			}
			m, err := runner.Run(ctx, d, core.PredictOracle, nil)
			if err != nil {
				return err
			}
			for _, rec := range m.IdleRecords {
				if math.IsNaN(rec.Estimate) || math.IsInf(rec.Estimate, 0) {
					continue
				}
				est = append(est, rec.Estimate)
				real = append(real, rec.Realized)
			}
		}
		if len(est) == 0 {
			fmt.Fprintf(tw, "%dK\tn/a\tn/a\tn/a\t0\n", paperN/1000)
			continue
		}
		mae, err := stats.MAE(est, real)
		if err != nil {
			return err
		}
		rel, err := stats.RelativeRMSE(est, real)
		if err != nil {
			return err
		}
		rmse, err := stats.RMSE(est, real)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%dK\t%.2f\t%.2f\t%.2f\t%d\n", paperN/1000, mae, rel, rmse, len(est))
	}
	return tw.Flush()
}

// table4Predictors builds the prediction sources of Table 4 in paper
// order; the nil predictor with PredictOracle is the "Real" column.
func table4Predictors(seed int64) []struct {
	label string
	mode  core.PredictionMode
	model predict.Predictor
} {
	return []struct {
		label string
		mode  core.PredictionMode
		model predict.Predictor
	}{
		{"HA", core.PredictModel, predict.HA{}},
		{"LR", core.PredictModel, &predict.LR{}},
		{"GBRT", core.PredictModel, &predict.GBRT{Seed: seed}},
		{"STNet(DeepST)", core.PredictModel, &predict.STNet{}},
		{"Real", core.PredictOracle, nil},
	}
}

func runTable4(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	city := cfg.city(120)
	algs := []string{"IRG", "LS", "POLAR"}
	cols := table4Predictors(0)
	// revenue[alg][predictor] accumulated over seeds.
	revenue := make(map[string][]float64)
	for _, a := range algs {
		revenue[a] = make([]float64, len(cols))
	}
	for seed := int64(1); seed <= int64(cfg.Seeds); seed++ {
		// One runner per seed: history and trained predictors are shared
		// across every cell of the table.
		base := core.NewRunner(core.Options{
			City: city, NumDrivers: cfg.Drivers(1000), Seed: seed,
		})
		for ci, col := range table4Predictors(seed) {
			for _, alg := range algs {
				runner := core.NewRunner(base.Options())
				runner.ShareFrom(base)
				d, err := core.NewDispatcher(alg, seed)
				if err != nil {
					return err
				}
				m, err := runner.Run(ctx, d, col.mode, col.model)
				if err != nil {
					return err
				}
				revenue[alg][ci] += m.Revenue / float64(cfg.Seeds)
				base.ShareFrom(runner) // keep newly trained models
			}
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "algorithm")
	for _, c := range cols {
		fmt.Fprintf(tw, "\t%s", c.label)
	}
	fmt.Fprintln(tw)
	for _, a := range algs {
		fmt.Fprintf(tw, "%s", a)
		for ci := range cols {
			fmt.Fprintf(tw, "\t%.4g", revenue[a][ci])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func runTable6(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	city := cfg.city(120)
	days := predict.MinLookbackDays + 28
	evalDays := 7
	h := predict.GenerateHistory(city, days, 1800, cfg.CitySeed+77)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "model\tRMSE (%%)\tReal RMSE\tMAE\n")
	for _, m := range predict.All(cfg.CitySeed) {
		if err := m.Train(h, days-evalDays); err != nil {
			return fmt.Errorf("train %s: %w", m.Name(), err)
		}
		res, err := predict.Evaluate(m, h, days-evalDays, days)
		if err != nil {
			return fmt.Errorf("evaluate %s: %w", m.Name(), err)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\n", res.Model, res.RelativeRMSE, res.RealRMSE, res.MAE)
	}
	return tw.Flush()
}

// chiSquareRegions picks the two Appendix B test regions: the busiest
// region (a Manhattan-core analogue) and a mid-traffic one.
func chiSquareRegions(cfg Config) (region1, region2 int) {
	city := cfg.city(120)
	grid := city.Grid()
	best, second := 0, 0
	bestV, secondV := -1.0, -1.0
	for r := 0; r < grid.NumRegions(); r++ {
		v := city.Intensity(0, 8*60, r)
		if v > bestV {
			second, secondV = best, bestV
			best, bestV = r, v
		} else if v > secondV {
			second, secondV = r, v
		}
	}
	_ = secondV
	return best, second
}

// runChiSquareTable runs Appendix B's test protocol: 210 per-minute
// samples (21 weekdays x 10 minutes) per (region, hour) cell.
func runChiSquareTable(cfg Config, w io.Writer, sampler func(city *workload.City, day, startMinute, minutes, region int, rng *rand.Rand) []int) error {
	cfg = cfg.withDefaults()
	// No simulation is involved, so always sample at the paper's full
	// order volume: scaled-down per-minute counts are too sparse to bin.
	cfg.Scale = 1.0
	city := cfg.city(120)
	r1, r2 := chiSquareRegions(cfg)
	rng := rand.New(rand.NewSource(cfg.CitySeed + 5))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "region\ttime slot\tr\tk\tchi2_{r-1}(0.05)\tverdict\n")
	for _, cell := range []struct {
		label  string
		region int
		hour   int
	}{
		{"region 1", r1, 7},
		{"region 1", r1, 8},
		{"region 2", r2, 7},
		{"region 2", r2, 8},
	} {
		var samples []int
		for day := 0; day < 21; day++ {
			// Sample the same clock window across days with the day
			// factor held fixed, as the paper pools 21 working days.
			samples = append(samples, sampler(city, 0, cell.hour*60, 10, cell.region, rng)...)
		}
		res, err := stats.ChiSquarePoissonTest(samples, 0.05)
		if err != nil {
			return err
		}
		verdict := "Poisson plausible"
		if res.Reject {
			verdict = "REJECTED"
		}
		fmt.Fprintf(tw, "%s\t%d:00~%d:10\t%d\t%.4f\t%.3f\t%s\n",
			cell.label, cell.hour, cell.hour, res.Bins, res.Statistic, res.Critical, verdict)
	}
	return tw.Flush()
}

func runTable7(ctx context.Context, cfg Config, w io.Writer) error {
	return runChiSquareTable(cfg, w, func(c *workload.City, day, start, minutes, region int, rng *rand.Rand) []int {
		return c.PerMinuteCounts(day, start, minutes, region, rng)
	})
}

func runTable8(ctx context.Context, cfg Config, w io.Writer) error {
	return runChiSquareTable(cfg, w, func(c *workload.City, day, start, minutes, region int, rng *rand.Rand) []int {
		return c.PerMinuteDropoffCounts(day, start, minutes, region, rng)
	})
}

// regionName renders a region as (row, col) for experiment output.
func regionName(grid *geo.Grid, r geo.RegionID) string {
	row, col := grid.RowCol(r)
	return fmt.Sprintf("r%02dc%02d", row, col)
}
