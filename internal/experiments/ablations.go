package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"mrvd/internal/core"
	"mrvd/internal/dispatch"
	"mrvd/internal/queueing"
	"mrvd/internal/roadnet"
	"mrvd/internal/sim"
	"mrvd/internal/stats"
)

func init() {
	register(Experiment{ID: "ablation-reneging", Title: "Reneging exponent beta: effect on IRG revenue and idle-estimate accuracy", Run: runAblationReneging})
	register(Experiment{ID: "ablation-lsseed", Title: "LS seeded by IRG vs seeded by RAND", Run: runAblationLSSeed})
	register(Experiment{ID: "ablation-coster", Title: "Great-circle coster vs road-network shortest paths", Run: runAblationCoster})
	register(Experiment{ID: "ablation-muupdate", Title: "IRG with vs without the mu feedback of Algorithm 2 line 11", Run: runAblationMuUpdate})
	register(Experiment{ID: "ablation-reposition", Title: "IRG with vs without queue-guided idle-driver repositioning (framework extension)", Run: runAblationReposition})
}

// runDirect executes a concrete dispatcher (not the name factory) over
// the configured instance seeds and returns mean revenue, served count,
// and mean idle-estimate absolute error where estimates exist.
func (c Config) runDirect(ctx context.Context, opts core.Options, mk func(seed int64) sim.Dispatcher, mode core.PredictionMode) (revenue, served, idleMAE float64, err error) {
	var rev, srv, mae stats.Summary
	for seed := int64(1); seed <= int64(c.Seeds); seed++ {
		o := opts
		o.Seed = seed
		runner := core.NewRunner(o)
		m, rerr := runner.Run(ctx, mk(seed), mode, nil)
		if rerr != nil {
			return 0, 0, 0, rerr
		}
		rev.Add(m.Revenue)
		srv.Add(float64(m.Served))
		for _, rec := range m.IdleRecords {
			// Drivers that rejoin with no estimator installed, or in a
			// region the model assigns unbounded wait, carry NaN/Inf
			// estimates; they have no defined error.
			if math.IsNaN(rec.Estimate) || math.IsInf(rec.Estimate, 0) {
				continue
			}
			mae.Add(math.Abs(rec.Estimate - rec.Realized))
		}
	}
	return rev.Mean(), srv.Mean(), mae.Mean(), nil
}

func runAblationReneging(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	city := cfg.city(120)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "beta\trevenue\tserved\tidle-estimate MAE (s)\n")
	for _, beta := range []float64{0, 0.02, 0.05, 0.1, 0.2} {
		model := queueing.New(queueing.Config{Beta: beta})
		rev, served, mae, err := cfg.runDirect(ctx,
			core.Options{City: city, NumDrivers: cfg.Drivers(1000)},
			func(int64) sim.Dispatcher { return &dispatch.IRG{Model: model} },
			core.PredictOracle)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%.2f\t%.4g\t%.0f\t%.2f\n", beta, rev, served, mae)
	}
	return tw.Flush()
}

func runAblationLSSeed(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	city := cfg.city(120)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "LS seed\trevenue\tserved\n")
	seeds := []struct {
		label string
		mk    func(seed int64) sim.Dispatcher
	}{
		{"IRG (paper)", func(int64) sim.Dispatcher { return &dispatch.LS{} }},
		{"RAND", func(seed int64) sim.Dispatcher {
			return &dispatch.LS{Seed: &dispatch.RAND{Seed: seed}}
		}},
		{"NEAR", func(int64) sim.Dispatcher {
			return &dispatch.LS{Seed: dispatch.NEAR{}}
		}},
	}
	for _, s := range seeds {
		rev, served, _, err := cfg.runDirect(ctx,
			core.Options{City: city, NumDrivers: cfg.Drivers(1000)}, s.mk, core.PredictOracle)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.0f\n", s.label, rev, served)
	}
	return tw.Flush()
}

func runAblationCoster(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	// The graph coster runs Dijkstra per query; keep this ablation small
	// regardless of the configured scale.
	small := cfg
	if small.Scale > 0.05 {
		small.Scale = 0.05
	}
	city := small.city(120)
	network := roadnet.GenerateGridNetwork(roadnet.GridNetworkConfig{Seed: small.CitySeed})
	costers := []struct {
		label string
		c     roadnet.Coster
	}{
		{"manhattan@11m/s (default)", roadnet.NewDefaultCoster()},
		{"euclid x1.3 detour", &roadnet.GreatCircleCoster{SpeedMPS: roadnet.DefaultSpeedMPS, DetourFactor: 1.3}},
		{"road-network dijkstra", roadnet.NewGraphCoster(network)},
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "coster\tIRG revenue\tserved\tavg batch (s)\n")
	for _, c := range costers {
		rev, served, batch, err := small.runPoint(ctx, core.Options{
			City: city, NumDrivers: small.Drivers(1000), Coster: c.c,
			Delta: 10, // fewer batches: Dijkstra-backed costs are slow
		}, "IRG", core.PredictOracle, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.0f\t%.4f\n", c.label, rev, served, batch)
	}
	return tw.Flush()
}

func runAblationMuUpdate(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	city := cfg.city(120)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "IRG variant\trevenue\tserved\n")
	variants := []struct {
		label string
		mk    func(seed int64) sim.Dispatcher
	}{
		{"mu update on (Alg. 2 line 11)", func(int64) sim.Dispatcher { return &dispatch.IRG{} }},
		{"mu update off (frozen scores)", func(int64) sim.Dispatcher { return &dispatch.IRG{DisableMuUpdate: true} }},
	}
	for _, v := range variants {
		rev, served, _, err := cfg.runDirect(ctx,
			core.Options{City: city, NumDrivers: cfg.Drivers(1000)}, v.mk, core.PredictOracle)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.0f\n", v.label, rev, served)
	}
	return tw.Flush()
}

func runAblationReposition(ctx context.Context, cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	city := cfg.city(120)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "repositioning\trevenue\tserved\n")
	variants := []struct {
		label string
		opts  func() core.Options
	}{
		{"off (paper base)", func() core.Options {
			return core.Options{City: city, NumDrivers: cfg.Drivers(1000)}
		}},
		{"queue-guided (extension)", func() core.Options {
			return core.Options{
				City: city, NumDrivers: cfg.Drivers(1000),
				Repositioner: &dispatch.QueueReposition{}, RepositionAfter: 240,
			}
		}},
	}
	for _, v := range variants {
		rev, served, _, err := cfg.runDirect(ctx,
			v.opts(),
			func(int64) sim.Dispatcher { return &dispatch.IRG{} }, core.PredictOracle)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.0f\n", v.label, rev, served)
	}
	return tw.Flush()
}
