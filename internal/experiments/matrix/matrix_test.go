package matrix

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"mrvd/internal/core"
	"mrvd/internal/geo"
	"mrvd/internal/sim"
	"mrvd/internal/workload"
)

// testConfig is a small, fast matrix: a 4x4-grid city with a short
// horizon, two cheap algorithms, a clean and a disrupted layer.
func testConfig(workers int) Config {
	return Config{
		Name: "test",
		Base: core.Options{
			City: workload.NewCity(workload.CityConfig{
				Grid:         geo.NewGrid(geo.NYCBBox, 4, 4),
				OrdersPerDay: 3000,
				Seed:         9,
			}),
			NumDrivers: 15,
			Delta:      10,
			Horizon:    2 * 3600,
		},
		Algorithms: []string{"NEAR", "RAND"},
		Scenarios: []Scenario{
			{Name: "none"},
			{Name: "shaky", Scenario: sim.ScenarioConfig{
				CancelRate: 0.2, DeclineProb: 0.1, TravelNoise: 0.15, Seed: 77,
			}},
		},
		Seeds:   []int64{1, 2, 3},
		Workers: workers,
		Mode:    core.PredictOracle,
	}
}

func runMatrix(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMatrixGridShape(t *testing.T) {
	res := runMatrix(t, testConfig(0))
	if len(res.Cells) != 2*2 { // 2 algorithms × 2 scenarios × 1 fleet
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	// Grid order: scenarios outermost, then fleets, then algorithms.
	wantOrder := []CellKey{
		{"NEAR", "none", 15}, {"RAND", "none", 15},
		{"NEAR", "shaky", 15}, {"RAND", "shaky", 15},
	}
	for i, c := range res.Cells {
		if c.CellKey != wantOrder[i] {
			t.Errorf("cell %d = %v, want %v", i, c.CellKey, wantOrder[i])
		}
		if len(c.Trials) != 3 {
			t.Errorf("cell %v has %d trials, want 3", c.CellKey, len(c.Trials))
		}
		if c.Stats.ServeRate.N != 3 || c.Stats.ServeRate.Mean <= 0 {
			t.Errorf("cell %v serve-rate aggregate %+v", c.CellKey, c.Stats.ServeRate)
		}
		for j, tr := range c.Trials {
			if tr.Seed != res.Seeds[j] {
				t.Errorf("cell %v trial %d seed %d, want %d", c.CellKey, j, tr.Seed, res.Seeds[j])
			}
			if tr.Summary.TotalOrders == 0 {
				t.Errorf("cell %v trial %d empty summary", c.CellKey, j)
			}
		}
	}
	// Default comparisons: one per (scenario, fleet) algorithm pair.
	if len(res.Comparisons) != 2 {
		t.Fatalf("comparisons = %d, want 2", len(res.Comparisons))
	}
	for _, cmp := range res.Comparisons {
		if len(cmp.Metrics) != 2 {
			t.Errorf("comparison %q has %d metrics, want serve_rate+revenue", cmp.Label, len(cmp.Metrics))
		}
		for _, m := range cmp.Metrics {
			if n := m.Paired.Wins + m.Paired.Losses + m.Paired.Ties; n != 3 {
				t.Errorf("comparison %q %s pairs %d seeds, want 3", cmp.Label, m.Metric, n)
			}
			if m.Paired.SignP <= 0 || m.Paired.SignP > 1 {
				t.Errorf("comparison %q %s sign p = %v", cmp.Label, m.Metric, m.Paired.SignP)
			}
		}
	}
}

// TestMatrixDisruptionsBite: the disrupted layer must actually record
// cancellations, declines, and travel-error samples, and its serve
// rate must not exceed the clean layer's (riders that cancel are gone).
func TestMatrixDisruptionsBite(t *testing.T) {
	res := runMatrix(t, testConfig(0))
	clean := res.Cell(CellKey{"NEAR", "none", 15})
	shaky := res.Cell(CellKey{"NEAR", "shaky", 15})
	if clean == nil || shaky == nil {
		t.Fatal("cells missing")
	}
	if shaky.Stats.Canceled.Mean <= 0 || shaky.Stats.Declines.Mean <= 0 || shaky.Stats.TravelAbsErrSecs.Mean <= 0 {
		t.Errorf("disrupted layer inert: %+v", shaky.Stats)
	}
	if clean.Stats.Canceled.Max != 0 || clean.Stats.Declines.Max != 0 {
		t.Errorf("clean layer disrupted: %+v", clean.Stats)
	}
	if shaky.Stats.ServeRate.Mean > clean.Stats.ServeRate.Mean {
		t.Errorf("serve rate rose under disruption: %.4f > %.4f",
			shaky.Stats.ServeRate.Mean, clean.Stats.ServeRate.Mean)
	}
}

// TestMatrixDeterminism: the same config run twice — and at different
// worker counts — yields deeply equal TrialResults and byte-identical
// markdown, CSV, and JSON reports. This is the property that makes
// EXP_*.json a regression baseline rather than a snapshot.
func TestMatrixDeterminism(t *testing.T) {
	render := func(res *Result) (md, csv, js []byte) {
		var m, c, j bytes.Buffer
		if err := res.Markdown(&m); err != nil {
			t.Fatal(err)
		}
		if err := res.CSV(&c); err != nil {
			t.Fatal(err)
		}
		if err := res.JSON(&j); err != nil {
			t.Fatal(err)
		}
		return m.Bytes(), c.Bytes(), j.Bytes()
	}
	seq := runMatrix(t, testConfig(1))
	again := runMatrix(t, testConfig(1))
	par := runMatrix(t, testConfig(4))

	if !reflect.DeepEqual(seq, again) {
		t.Error("rerun diverged from first run")
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("parallel run diverged from sequential run")
	}
	m1, c1, j1 := render(seq)
	m2, c2, j2 := render(par)
	if !bytes.Equal(m1, m2) {
		t.Error("markdown reports differ across worker counts")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("CSV reports differ across worker counts")
	}
	if !bytes.Equal(j1, j2) {
		t.Error("JSON reports differ across worker counts")
	}
}

// TestReportRoundTrip: the JSON report parses back through ReadReport
// into an equal Result.
func TestReportRoundTrip(t *testing.T) {
	res := runMatrix(t, testConfig(0))
	var buf bytes.Buffer
	if err := res.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Error("report did not round-trip")
	}
	if _, err := ReadReport(bytes.NewReader([]byte(`{"name":"x","cells":[]}`))); err == nil {
		t.Error("empty report should fail validation")
	}
	if _, err := ReadReport(bytes.NewReader([]byte(`not json`))); err == nil {
		t.Error("malformed report should fail validation")
	}
}

func TestMatrixConfigValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{}); err == nil {
		t.Error("no algorithms should error")
	}
	bad := testConfig(1)
	bad.Scenarios = []Scenario{{Name: "dup"}, {Name: "dup"}}
	if _, err := Run(ctx, bad); err == nil {
		t.Error("duplicate scenario names should error")
	}
	unnamed := testConfig(1)
	unnamed.Scenarios = []Scenario{{}}
	if _, err := Run(ctx, unnamed); err == nil {
		t.Error("empty scenario name should error")
	}
	missing := testConfig(1)
	missing.Comparisons = []Comparison{{Label: "ghost", A: CellKey{"IRG", "none", 15}, B: CellKey{"NEAR", "none", 15}}}
	if _, err := Run(ctx, missing); err == nil {
		t.Error("comparison against a cell outside the grid should error")
	}
	alg := testConfig(1)
	alg.Algorithms = []string{"NOPE"}
	if _, err := Run(ctx, alg); err == nil {
		t.Error("unknown algorithm should error")
	}
}

// TestPresetsBuild: every preset resolves to a runnable config with a
// non-empty grid and at least one comparison (the disruption ramp's
// default pairs include IRG vs LS per layer).
func TestPresetsBuild(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := Preset(name, Params{Scale: 0.01, Seeds: 2})
		if err != nil {
			t.Fatal(err)
		}
		cfg = cfg.withDefaults()
		if cfg.Name != name {
			t.Errorf("preset %q config named %q", name, cfg.Name)
		}
		if len(cfg.Algorithms) == 0 || len(cfg.Scenarios) == 0 || len(cfg.Seeds) != 2 {
			t.Errorf("preset %q degenerate: %+v", name, cfg)
		}
		if len(cfg.Comparisons) == 0 {
			t.Errorf("preset %q has no comparisons", name)
		}
	}
	if _, err := Preset("nope", Params{}); err == nil {
		t.Error("unknown preset should error")
	}
	if PresetTitle("disruptions") == "" {
		t.Error("preset title missing")
	}
}
