package matrix

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Report rendering. All three formats are pure functions of Result, and
// Result is a pure function of Config (core.Sweep's determinism
// contract), so rerunning a matrix with the same config reproduces
// every report byte-identically — the property the determinism tests
// pin and the EXP_*.json regression baselines rely on.

// fnum formats a float compactly but deterministically.
func fnum(x float64) string { return strconv.FormatFloat(x, 'g', 6, 64) }

// ci renders "mean ± half".
func ci(a Aggregate) string { return fmt.Sprintf("%s ± %s", fnum(a.Mean), fnum(a.Half)) }

// Markdown writes the cell and comparison tables as GitHub-flavored
// markdown.
func (r *Result) Markdown(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# Experiment matrix: %s\n\n", r.Name)
	p("%d%% confidence intervals (Student-t), %d seeds per cell.\n\n", int(r.Confidence*100+0.5), len(r.Seeds))
	p("## Cells\n\n")
	p("| scenario | fleet | algorithm | serve rate | revenue | wait (s) | canceled | declines | travel err (s) | shared | detour (s) |\n")
	p("|---|---:|---|---|---|---|---|---|---|---|---|\n")
	for _, c := range r.Cells {
		s := c.Stats
		p("| %s | %d | %s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
			c.Scenario, c.Fleet, c.Algorithm,
			ci(s.ServeRate), ci(s.Revenue), ci(s.MeanWaitSeconds),
			ci(s.Canceled), ci(s.Declines), ci(s.TravelAbsErrSecs),
			ci(s.SharedRate), ci(s.MeanDetourSeconds))
	}
	if len(r.Comparisons) > 0 {
		p("\n## Paired comparisons (A vs B, per-seed)\n\n")
		p("| comparison | metric | mean diff | wins/losses/ties | sign p |\n")
		p("|---|---|---|---|---|\n")
		for _, cmp := range r.Comparisons {
			for _, m := range cmp.Metrics {
				p("| %s | %s | %s | %d/%d/%d | %s |\n",
					cmp.Label, m.Metric, ci(Aggregate{Mean: m.Paired.Diff.Mean, Half: m.Paired.Diff.Half}),
					m.Paired.Wins, m.Paired.Losses, m.Paired.Ties, fnum(m.Paired.SignP))
			}
		}
	}
	return err
}

// CSV writes one long-format row per (cell, metric): grid key, sample
// count, mean, CI half-width, median, min, max.
func (r *Result) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"matrix", "scenario", "fleet", "algorithm", "metric", "n", "mean", "half", "median", "min", "max"}); err != nil {
		return err
	}
	metrics := []struct {
		name string
		get  func(CellStats) Aggregate
	}{
		{"serve_rate", func(s CellStats) Aggregate { return s.ServeRate }},
		{"revenue", func(s CellStats) Aggregate { return s.Revenue }},
		{"mean_wait_seconds", func(s CellStats) Aggregate { return s.MeanWaitSeconds }},
		{"canceled", func(s CellStats) Aggregate { return s.Canceled }},
		{"declines", func(s CellStats) Aggregate { return s.Declines }},
		{"travel_abs_err_seconds", func(s CellStats) Aggregate { return s.TravelAbsErrSecs }},
		{"shared_rate", func(s CellStats) Aggregate { return s.SharedRate }},
		{"mean_detour_seconds", func(s CellStats) Aggregate { return s.MeanDetourSeconds }},
	}
	for _, c := range r.Cells {
		for _, m := range metrics {
			a := m.get(c.Stats)
			row := []string{
				r.Name, c.Scenario, strconv.Itoa(c.Fleet), c.Algorithm, m.name,
				strconv.Itoa(a.N), fnum(a.Mean), fnum(a.Half), fnum(a.Median), fnum(a.Min), fnum(a.Max),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// JSON writes the machine-readable report (the EXP_*.json schema).
func (r *Result) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses an EXP_*.json report and validates that it is
// non-degenerate: at least one cell, every cell carrying trials, and
// every comparison carrying paired metrics. The CI smoke step and
// downstream tooling share this check.
func ReadReport(rd io.Reader) (*Result, error) {
	var r Result
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("matrix: parsing report: %w", err)
	}
	if r.Name == "" {
		return nil, fmt.Errorf("matrix: report has no name")
	}
	if len(r.Cells) == 0 {
		return nil, fmt.Errorf("matrix: report %q has no cells", r.Name)
	}
	for _, c := range r.Cells {
		if len(c.Trials) == 0 {
			return nil, fmt.Errorf("matrix: report %q cell %s has no trials", r.Name, c.CellKey)
		}
		if c.Stats.ServeRate.N != len(c.Trials) {
			return nil, fmt.Errorf("matrix: report %q cell %s aggregates %d trials of %d",
				r.Name, c.CellKey, c.Stats.ServeRate.N, len(c.Trials))
		}
	}
	for _, cmp := range r.Comparisons {
		if len(cmp.Metrics) == 0 {
			return nil, fmt.Errorf("matrix: report %q comparison %q has no metrics", r.Name, cmp.Label)
		}
	}
	return &r, nil
}
