package matrix

import (
	"context"
	"testing"

	"mrvd/internal/core"
	"mrvd/internal/geo"
	"mrvd/internal/pool"
	"mrvd/internal/workload"
)

// Quality-regression guards. The BENCH_*.json baselines pin speed;
// these cells pin dispatch *quality*: orderings the paper's results
// and the pooling subsystem's reason-to-exist both imply. A change
// that silently degrades IRG below random dispatch, or makes pooled
// capacity lose to solo on a saturated burst, fails `go test ./...`
// here — not just a benchmark regeneration nobody reran.

// TestQualityIRGServesAtLeastRAND: on a small fixed full-day cell
// (every run deterministic, so this is a pin, not a flake), the
// paper's IRG must beat-or-match uniformly random dispatch on mean
// serve rate and mean revenue across 5 seeded instances.
func TestQualityIRGServesAtLeastRAND(t *testing.T) {
	cfg := Config{
		Name: "quality-irg",
		Base: core.Options{
			City: workload.NewCity(workload.CityConfig{
				Grid:         geo.NewGrid(geo.NYCBBox, 8, 8),
				OrdersPerDay: 3000,
				Seed:         9,
			}),
			NumDrivers: 15,
			Delta:      10,
		},
		Algorithms: []string{"IRG", "RAND"},
		Seeds:      []int64{1, 2, 3, 4, 5},
		Mode:       core.PredictOracle,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fleet := cfg.Base.NumDrivers
	irg := res.Cell(CellKey{"IRG", "base", fleet})
	rnd := res.Cell(CellKey{"RAND", "base", fleet})
	if irg == nil || rnd == nil {
		t.Fatal("cells missing")
	}
	if irg.Stats.ServeRate.Mean < rnd.Stats.ServeRate.Mean {
		t.Errorf("IRG mean serve rate %.4f below RAND %.4f — quality regression",
			irg.Stats.ServeRate.Mean, rnd.Stats.ServeRate.Mean)
	}
	if irg.Stats.Revenue.Mean < rnd.Stats.Revenue.Mean {
		t.Errorf("IRG mean revenue %.4g below RAND %.4g — quality regression",
			irg.Stats.Revenue.Mean, rnd.Stats.Revenue.Mean)
	}
	for _, m := range res.Comparisons[0].Metrics {
		if m.Metric == "serve_rate" {
			t.Logf("IRG vs RAND serve rate: diff %.4f ± %.4f, %d/%d/%d (sign p %.3f)",
				m.Paired.Diff.Mean, m.Paired.Diff.Half,
				m.Paired.Wins, m.Paired.Losses, m.Paired.Ties, m.Paired.SignP)
		}
	}
}

// TestQualityPooledServesAtLeastSolo: on the saturated-peak fixture
// (corridor burst, far more riders than drivers), POOL at capacity 2
// must serve at least as many riders as solo dispatch, and must
// actually pool some of them. Losing this ordering means insertion
// search or plan accounting regressed.
func TestQualityPooledServesAtLeastSolo(t *testing.T) {
	orders, starts := SaturatedPeak(40, 4, 7)
	cfg := Config{
		Name: "quality-pooling",
		Base: core.Options{
			// The city only provides the grid and oracle shape; orders
			// replay the fixed corridor trace with pinned starts.
			City: workload.NewCity(workload.CityConfig{
				Grid:         geo.NewGrid(geo.NYCBBox, 4, 4),
				OrdersPerDay: 1000,
				Seed:         9,
			}),
			NumDrivers: len(starts),
			Delta:      3,
			Horizon:    4000,
		},
		Algorithms: []string{"POOL"},
		Scenarios: []Scenario{
			{Name: "solo"},
			{Name: "cap2", Pooling: pool.Config{Capacity: 2, MaxDetourSeconds: 240}},
		},
		Seeds:  []int64{1},
		Orders: orders,
		Starts: starts,
		Comparisons: []Comparison{{
			Label: "cap2 vs solo",
			A:     CellKey{"POOL", "cap2", len(starts)},
			B:     CellKey{"POOL", "solo", len(starts)},
		}},
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	solo := res.Cell(CellKey{"POOL", "solo", len(starts)})
	cap2 := res.Cell(CellKey{"POOL", "cap2", len(starts)})
	if solo == nil || cap2 == nil {
		t.Fatal("cells missing")
	}
	if cap2.Stats.ServeRate.Mean < solo.Stats.ServeRate.Mean {
		t.Errorf("pooled capacity-2 serve rate %.4f below solo %.4f on the saturated peak — quality regression",
			cap2.Stats.ServeRate.Mean, solo.Stats.ServeRate.Mean)
	}
	if cap2.Stats.SharedRate.Mean <= 0 {
		t.Error("capacity-2 cell pooled nothing on a saturated corridor burst")
	}
	if cap2.Stats.MeanDetourSeconds.Max > 240+1e-9 {
		t.Errorf("mean detour %.1fs exceeds the 240s bound", cap2.Stats.MeanDetourSeconds.Max)
	}
	t.Logf("saturated peak: solo served %.0f, cap2 served %.0f (shared rate %.2f, mean detour %.1fs)",
		solo.Stats.ServeRate.Mean*float64(len(orders)), cap2.Stats.ServeRate.Mean*float64(len(orders)),
		cap2.Stats.SharedRate.Mean, cap2.Stats.MeanDetourSeconds.Mean)
}
