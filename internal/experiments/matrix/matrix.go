// Package matrix runs experiment matrices: an (algorithm × scenario ×
// fleet × seed) grid of full dispatch simulations, aggregated into
// per-cell trial statistics (mean ± Student-t CI, min/max/median via
// internal/stats.Estimator) and seed-for-seed paired algorithm
// comparisons (paired mean difference with CI plus an exact sign
// test). It is the reproduction's answer to the paper's "every data
// point is averaged over 10 problem instances" methodology, extended
// with the uncertainty the paper leaves implicit — and it is how the
// PR-5 disruption knobs and the PR-6 pooling mode become swept,
// publishable robustness results instead of one-off runs.
//
// The grid executes on core.Sweep: each scenario layer is one sweep,
// so every (seed, fleet) problem instance is materialized once and
// shared read-only across that instance's algorithm cells, and cells
// run in parallel on a bounded worker pool. Results are deterministic:
// the same Config produces byte-identical reports at any worker count.
package matrix

import (
	"context"
	"fmt"

	"mrvd/internal/core"
	"mrvd/internal/geo"
	"mrvd/internal/pool"
	"mrvd/internal/predict"
	"mrvd/internal/sim"
	"mrvd/internal/stats"
	"mrvd/internal/trace"
)

// Scenario is one disruption/pooling layer of the matrix: a named
// combination of the PR-5 scenario knobs and the PR-6 pooling config,
// applied to every (algorithm, fleet, seed) cell in the layer. The
// zero-valued layers ("no disruptions, no pooling") are valid and are
// how baselines enter the same report as the stressed cells.
type Scenario struct {
	Name     string
	Scenario sim.ScenarioConfig
	Pooling  pool.Config
}

// CellKey identifies one aggregated cell of the matrix.
type CellKey struct {
	Algorithm string `json:"algorithm"`
	Scenario  string `json:"scenario"`
	Fleet     int    `json:"fleet"`
}

func (k CellKey) String() string {
	return fmt.Sprintf("%s/%s/fleet=%d", k.Algorithm, k.Scenario, k.Fleet)
}

// Config describes a matrix run.
type Config struct {
	// Name labels the matrix in reports ("disruptions").
	Name string
	// Base provides the shared problem setting (city, batch interval,
	// coster...). Seed, NumDrivers, Scenario and Pooling are overwritten
	// per cell from the grid axes.
	Base core.Options
	// Algorithms are dispatcher names accepted by core.NewDispatcher.
	Algorithms []string
	// Scenarios are the disruption/pooling layers; empty defaults to a
	// single zero-valued "base" layer.
	Scenarios []Scenario
	// Fleets are driver counts; empty defaults to the base fleet.
	Fleets []int
	// Seeds are problem-instance seeds; empty defaults to 1..3. Every
	// cell runs every seed, which is what makes comparisons pairable.
	Seeds []int64
	// Workers bounds parallel cell execution (0 = GOMAXPROCS). Reports
	// are byte-identical at any worker count.
	Workers int
	// Mode and Model select the demand-forecast source, as in
	// core.SweepSpec (Model instances are trained once per seed and
	// shared across that seed's cells).
	Mode  core.PredictionMode
	Model func() predict.Predictor
	// Confidence is the two-sided CI level for cell aggregates and
	// paired comparisons (default 0.95).
	Confidence float64
	// Comparisons lists the paired cell comparisons to compute; empty
	// defaults to every unordered algorithm pair within each
	// (scenario, fleet). Explicit entries may compare across scenarios
	// (pooled-vs-solo) or fleets instead.
	Comparisons []Comparison
	// Orders, when set, replays this fixed trace for every cell instead
	// of generating a day from the city (core.SweepSpec.Orders); Starts
	// optionally pins fleet start positions.
	Orders []trace.Order
	Starts []geo.Point
}

// Comparison names two cells to compare seed-for-seed.
type Comparison struct {
	Label string  `json:"label"`
	A     CellKey `json:"a"`
	B     CellKey `json:"b"`
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "matrix"
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = []Scenario{{Name: "base"}}
	}
	if len(c.Fleets) == 0 {
		c.Fleets = []int{c.Base.WithDefaults().NumDrivers}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2, 3}
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	if len(c.Comparisons) == 0 {
		for _, sc := range c.Scenarios {
			for _, fleet := range c.Fleets {
				for i := 0; i < len(c.Algorithms); i++ {
					for j := i + 1; j < len(c.Algorithms); j++ {
						a := CellKey{c.Algorithms[i], sc.Name, fleet}
						b := CellKey{c.Algorithms[j], sc.Name, fleet}
						c.Comparisons = append(c.Comparisons, Comparison{
							Label: fmt.Sprintf("%s vs %s @ %s/fleet=%d", a.Algorithm, b.Algorithm, sc.Name, fleet),
							A:     a, B: b,
						})
					}
				}
			}
		}
	}
	return c
}

// TrialResult is one completed (cell, seed) simulation: the run's
// deterministic Summary projection. Two executions of the same config
// produce identical TrialResults in identical order.
type TrialResult struct {
	CellKey
	Seed    int64       `json:"seed"`
	Summary sim.Summary `json:"summary"`
}

// Trial-level derived metrics.

// ServeRate is the fraction of the trace served.
func (t TrialResult) ServeRate() float64 {
	if t.Summary.TotalOrders == 0 {
		return 0
	}
	return float64(t.Summary.Served) / float64(t.Summary.TotalOrders)
}

// MeanWaitSeconds is the mean assignment-to-pickup wait of served
// riders (driver deadhead travel per served order).
func (t TrialResult) MeanWaitSeconds() float64 {
	if t.Summary.Served == 0 {
		return 0
	}
	return t.Summary.PickupSeconds / float64(t.Summary.Served)
}

// SharedRate is the fraction of served riders whose trip was pooled.
func (t TrialResult) SharedRate() float64 {
	if t.Summary.Served == 0 {
		return 0
	}
	return float64(t.Summary.SharedServed) / float64(t.Summary.Served)
}

// MeanDetourSeconds is the mean realized detour per completed shared
// trip (0 when none).
func (t TrialResult) MeanDetourSeconds() float64 {
	if t.Summary.SharedServed == 0 {
		return 0
	}
	return t.Summary.DetourSeconds / float64(t.Summary.SharedServed)
}

// Aggregate summarizes one metric over a cell's trials: the mean with
// its Student-t confidence half-width, plus the nearest-rank median
// and the extremes.
type Aggregate struct {
	Mean   float64 `json:"mean"`
	Half   float64 `json:"half"`
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	N      int     `json:"n"`
}

func aggregate(xs []float64, confidence float64) Aggregate {
	var e stats.Estimator
	e.AddAll(xs)
	iv := e.MeanCI(confidence)
	return Aggregate{
		Mean: iv.Mean, Half: iv.Half,
		Median: e.Quantile(0.5), Min: e.Min(), Max: e.Max(), N: e.Count(),
	}
}

// CellStats are the per-cell aggregates reported for every metric the
// matrix tracks. Pooling metrics stay zero for unpooled cells; the
// travel-error aggregate stays zero without travel noise.
type CellStats struct {
	ServeRate         Aggregate `json:"serve_rate"`
	Revenue           Aggregate `json:"revenue"`
	MeanWaitSeconds   Aggregate `json:"mean_wait_seconds"`
	Canceled          Aggregate `json:"canceled"`
	Declines          Aggregate `json:"declines"`
	TravelAbsErrSecs  Aggregate `json:"travel_abs_err_seconds"`
	SharedRate        Aggregate `json:"shared_rate"`
	MeanDetourSeconds Aggregate `json:"mean_detour_seconds"`
}

// CellResult is one aggregated matrix cell with its per-seed trials.
type CellResult struct {
	CellKey
	Trials []TrialResult `json:"trials"`
	Stats  CellStats     `json:"stats"`
}

// MetricComparison is one metric's seed-paired comparison between two
// cells: mean difference A-B with CI, per-seed win/loss/tie record,
// and the exact sign-test p-value.
type MetricComparison struct {
	Metric string       `json:"metric"`
	Paired stats.Paired `json:"paired"`
}

// ComparisonResult is a resolved Comparison: its per-metric paired
// statistics, seed-aligned across the two cells.
type ComparisonResult struct {
	Comparison
	Metrics []MetricComparison `json:"metrics"`
}

// Result is a completed matrix: the cell aggregates in deterministic
// grid order (scenarios outermost, then fleets, then algorithms) and
// the paired comparisons. It is the schema of the EXP_*.json reports.
type Result struct {
	Name        string             `json:"name"`
	Confidence  float64            `json:"confidence"`
	Algorithms  []string           `json:"algorithms"`
	Scenarios   []string           `json:"scenarios"`
	Fleets      []int              `json:"fleets"`
	Seeds       []int64            `json:"seeds"`
	Cells       []CellResult       `json:"cells"`
	Comparisons []ComparisonResult `json:"comparisons"`
}

// Cell returns the aggregated cell for a key, or nil.
func (r *Result) Cell(k CellKey) *CellResult {
	for i := range r.Cells {
		if r.Cells[i].CellKey == k {
			return &r.Cells[i]
		}
	}
	return nil
}

// Run executes the matrix. Each scenario layer is one core.Sweep over
// (algorithm × seed × fleet), so problem instances are shared across
// algorithms and cells run in parallel; the layers run back to back.
// Any failed cell fails the whole matrix — a partially filled grid
// cannot be paired.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Algorithms) == 0 {
		return nil, fmt.Errorf("matrix: config needs at least one algorithm")
	}
	seen := map[string]bool{}
	for _, sc := range cfg.Scenarios {
		if sc.Name == "" {
			return nil, fmt.Errorf("matrix: scenario with empty name")
		}
		if seen[sc.Name] {
			return nil, fmt.Errorf("matrix: duplicate scenario %q", sc.Name)
		}
		seen[sc.Name] = true
	}

	type trialKey struct {
		CellKey
		seed int64
	}
	trials := make(map[trialKey]sim.Summary)
	for _, sc := range cfg.Scenarios {
		base := cfg.Base
		base.Scenario = sc.Scenario
		base.Pooling = sc.Pooling
		results, err := core.Sweep(ctx, base, core.SweepSpec{
			Algorithms: cfg.Algorithms,
			Seeds:      cfg.Seeds,
			Fleets:     cfg.Fleets,
			Workers:    cfg.Workers,
			Mode:       cfg.Mode,
			Model:      cfg.Model,
			Orders:     cfg.Orders,
			Starts:     cfg.Starts,
		})
		if err != nil {
			return nil, fmt.Errorf("matrix: scenario %q: %w", sc.Name, err)
		}
		for _, r := range results {
			if r.Err != nil {
				return nil, fmt.Errorf("matrix: cell %s/%s fleet=%d seed=%d: %w",
					r.Algorithm, sc.Name, r.Fleet, r.Seed, r.Err)
			}
			k := trialKey{CellKey{r.Algorithm, sc.Name, r.Fleet}, r.Seed}
			trials[k] = r.Metrics.Summary()
		}
	}

	res := &Result{
		Name:       cfg.Name,
		Confidence: cfg.Confidence,
		Algorithms: cfg.Algorithms,
		Fleets:     cfg.Fleets,
		Seeds:      cfg.Seeds,
	}
	for _, sc := range cfg.Scenarios {
		res.Scenarios = append(res.Scenarios, sc.Name)
	}
	for _, sc := range cfg.Scenarios {
		for _, fleet := range cfg.Fleets {
			for _, alg := range cfg.Algorithms {
				cell := CellResult{CellKey: CellKey{alg, sc.Name, fleet}}
				for _, seed := range cfg.Seeds {
					s, ok := trials[trialKey{cell.CellKey, seed}]
					if !ok {
						return nil, fmt.Errorf("matrix: missing trial %s seed=%d", cell.CellKey, seed)
					}
					cell.Trials = append(cell.Trials, TrialResult{CellKey: cell.CellKey, Seed: seed, Summary: s})
				}
				cell.Stats = aggregateCell(cell.Trials, cfg.Confidence)
				res.Cells = append(res.Cells, cell)
			}
		}
	}

	for _, cmp := range cfg.Comparisons {
		a, b := res.Cell(cmp.A), res.Cell(cmp.B)
		if a == nil || b == nil {
			return nil, fmt.Errorf("matrix: comparison %q references missing cell (%s vs %s)", cmp.Label, cmp.A, cmp.B)
		}
		cr := ComparisonResult{Comparison: cmp}
		for _, m := range comparedMetrics {
			av := make([]float64, len(a.Trials))
			bv := make([]float64, len(b.Trials))
			for i := range a.Trials {
				av[i] = m.get(a.Trials[i])
				bv[i] = m.get(b.Trials[i])
			}
			p, err := stats.PairedCompare(av, bv, cfg.Confidence)
			if err != nil {
				return nil, fmt.Errorf("matrix: comparison %q: %w", cmp.Label, err)
			}
			cr.Metrics = append(cr.Metrics, MetricComparison{Metric: m.name, Paired: p})
		}
		res.Comparisons = append(res.Comparisons, cr)
	}
	return res, nil
}

// comparedMetrics are the trial metrics every paired comparison
// reports on.
var comparedMetrics = []struct {
	name string
	get  func(TrialResult) float64
}{
	{"serve_rate", TrialResult.ServeRate},
	{"revenue", func(t TrialResult) float64 { return t.Summary.Revenue }},
}

func aggregateCell(trials []TrialResult, confidence float64) CellStats {
	col := func(get func(TrialResult) float64) Aggregate {
		xs := make([]float64, len(trials))
		for i, t := range trials {
			xs[i] = get(t)
		}
		return aggregate(xs, confidence)
	}
	return CellStats{
		ServeRate:       col(TrialResult.ServeRate),
		Revenue:         col(func(t TrialResult) float64 { return t.Summary.Revenue }),
		MeanWaitSeconds: col(TrialResult.MeanWaitSeconds),
		Canceled:        col(func(t TrialResult) float64 { return float64(t.Summary.Canceled) }),
		Declines:        col(func(t TrialResult) float64 { return float64(t.Summary.Declines) }),
		TravelAbsErrSecs: col(func(t TrialResult) float64 {
			return t.Summary.MeanAbsTravelErrorSeconds()
		}),
		SharedRate:        col(TrialResult.SharedRate),
		MeanDetourSeconds: col(TrialResult.MeanDetourSeconds),
	}
}
