package matrix

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mrvd/internal/core"
	"mrvd/internal/experiments"
	"mrvd/internal/geo"
	"mrvd/internal/pool"
	"mrvd/internal/sim"
	"mrvd/internal/trace"
	"mrvd/internal/workload"
)

// Params scales and seeds a preset matrix, mirroring
// experiments.Config: Scale multiplies the paper's order volume and
// fleet sizes, Seeds is the number of problem instances per cell.
type Params struct {
	// Scale is the fraction of the paper's daily order volume (default
	// 0.05 — presets run whole grids, so they default smaller than the
	// single-table experiments).
	Scale float64
	// Seeds is the instance count per cell (default 5; the paper
	// averages over 10).
	Seeds int
	// Workers bounds parallel cells (0 = GOMAXPROCS).
	Workers int
	// CitySeed fixes the synthetic city's structure (default 31, the
	// seed every other experiment in this repo uses).
	CitySeed int64
}

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 0.05
	}
	if p.Seeds <= 0 {
		p.Seeds = 5
	}
	if p.CitySeed == 0 {
		p.CitySeed = 31
	}
	return p
}

func (p Params) orders() int {
	return int(float64(experiments.PaperOrdersPerDay)*p.Scale + 0.5)
}

func (p Params) drivers(paperN int) int {
	n := int(float64(paperN)*p.Scale + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

func (p Params) city() *workload.City {
	return workload.NewCity(workload.CityConfig{
		OrdersPerDay:    p.orders(),
		BaseWaitSeconds: 120,
		Seed:            p.CitySeed,
	})
}

func (p Params) seedList() []int64 {
	seeds := make([]int64, p.Seeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// presets maps preset names to their Config builders.
var presets = map[string]struct {
	title string
	build func(Params) Config
}{
	"disruptions": {
		"Disruption ramp: IRG vs LS serve-rate degradation as cancel hazard × decline probability × travel noise rise",
		disruptionRamp,
	},
	"pooling": {
		"Pooled vs solo: POOL dispatch at capacity 2 and 4 against single-rider dispatch on an undersupplied fleet",
		pooledVsSolo,
	},
	"fleets": {
		"Fleet scaling: IRG vs LS vs NEAR across fleet sizes",
		fleetScaling,
	},
}

// Preset builds a named preset matrix at the given scale. Use
// PresetNames for the list.
func Preset(name string, p Params) (Config, error) {
	entry, ok := presets[name]
	if !ok {
		return Config{}, fmt.Errorf("matrix: unknown preset %q (have %v)", name, PresetNames())
	}
	return entry.build(p.withDefaults()), nil
}

// PresetTitle returns a preset's one-line description.
func PresetTitle(name string) string { return presets[name].title }

// PresetNames lists preset names in sorted order.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// disruptionRamp crosses the PR-5 disruption knobs in four escalating
// steps and runs IRG and LS over every step: the default comparisons
// give the paired IRG-vs-LS result per step, answering "how does the
// IRG advantage hold up as the world degrades?". Scenario RNG seeds
// are fixed per layer so layers are distinct but reproducible.
func disruptionRamp(p Params) Config {
	return Config{
		Name:       "disruptions",
		Base:       core.Options{City: p.city(), NumDrivers: p.drivers(1000)},
		Algorithms: []string{"IRG", "LS"},
		Scenarios: []Scenario{
			{Name: "none"},
			{Name: "mild", Scenario: sim.ScenarioConfig{
				CancelRate: 0.05, DeclineProb: 0.02, TravelNoise: 0.05, Seed: 101,
			}},
			{Name: "moderate", Scenario: sim.ScenarioConfig{
				CancelRate: 0.15, DeclineProb: 0.05, TravelNoise: 0.10, Seed: 102,
			}},
			{Name: "severe", Scenario: sim.ScenarioConfig{
				CancelRate: 0.30, DeclineProb: 0.10, TravelNoise: 0.20, Seed: 103,
			}},
		},
		Seeds:   p.seedList(),
		Workers: p.Workers,
		Mode:    core.PredictOracle,
	}
}

// pooledVsSolo runs the POOL dispatcher on an undersupplied fleet
// (half the ramp's drivers, so solo dispatch saturates) with pooling
// off, at capacity 2, and at capacity 4 — the scenario axis carries
// the pooling config, and the explicit comparisons pair each pooled
// layer against solo on the same seeds.
func pooledVsSolo(p Params) Config {
	fleet := p.drivers(500)
	cell := func(scenario string) CellKey { return CellKey{"POOL", scenario, fleet} }
	return Config{
		Name:       "pooling",
		Base:       core.Options{City: p.city(), NumDrivers: fleet},
		Algorithms: []string{"POOL"},
		Scenarios: []Scenario{
			{Name: "solo"},
			{Name: "cap2", Pooling: pool.Config{Capacity: 2}},
			{Name: "cap4", Pooling: pool.Config{Capacity: 4}},
		},
		Seeds:   p.seedList(),
		Workers: p.Workers,
		Mode:    core.PredictOracle,
		Comparisons: []Comparison{
			{Label: "cap2 vs solo", A: cell("cap2"), B: cell("solo")},
			{Label: "cap4 vs solo", A: cell("cap4"), B: cell("solo")},
		},
	}
}

// fleetScaling sweeps fleet sizes with no disruptions — the paper's
// Figure 7 axis, now with CIs and paired per-fleet comparisons.
func fleetScaling(p Params) Config {
	return Config{
		Name:       "fleets",
		Base:       core.Options{City: p.city()},
		Algorithms: []string{"IRG", "LS", "NEAR"},
		Fleets:     []int{p.drivers(500), p.drivers(1000), p.drivers(2000)},
		Seeds:      p.seedList(),
		Workers:    p.Workers,
		Mode:       core.PredictOracle,
	}
}

// SaturatedPeak builds the corridor-burst fixture the pooling quality
// guard pins: nOrders riders along one eastbound corridor posted
// within the first minute, nDrivers drivers spaced along it — far more
// demand than solo dispatch can serve before deadlines pass, so pooled
// capacity is the only way to raise throughput. Returns the trace and
// pinned fleet starts for a Config.Orders/Starts replay.
func SaturatedPeak(nOrders, nDrivers int, seed int64) ([]trace.Order, []geo.Point) {
	p0 := geo.NYCBBox.Center()
	offset := func(p geo.Point, meters float64) geo.Point {
		dLng := meters / (geo.EarthRadiusMeters * math.Cos(p.Lat*math.Pi/180)) * 180 / math.Pi
		return geo.Point{Lng: p.Lng + dLng, Lat: p.Lat}
	}
	rng := rand.New(rand.NewSource(seed))
	orders := make([]trace.Order, nOrders)
	for i := range orders {
		start := rng.Float64() * 3000
		length := 1000 + rng.Float64()*3000
		post := rng.Float64() * 60
		orders[i] = trace.Order{
			ID:       trace.OrderID(i),
			PostTime: post,
			Pickup:   offset(p0, start),
			Dropoff:  offset(p0, start+length),
			Deadline: post + 240 + rng.Float64()*120,
		}
	}
	starts := make([]geo.Point, nDrivers)
	for i := range starts {
		starts[i] = offset(p0, float64(i)*3000/float64(nDrivers))
	}
	return orders, starts
}
