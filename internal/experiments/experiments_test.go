package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// tinyConfig keeps smoke tests fast: a 2% -scale city, one instance.
func tinyConfig() Config { return Config{Scale: 0.02, Seeds: 1} }

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must have a
	// registered regenerator, plus the DESIGN.md ablations.
	want := []string{
		"table3", "table4", "table6", "table7", "table8",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"ablation-reneging", "ablation-lsseed", "ablation-coster", "ablation-muupdate",
		"ablation-reposition",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if got := len(IDs()); got != len(want) {
		t.Errorf("registry holds %d experiments, want %d: %v", got, len(want), IDs())
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("table99"); ok {
		t.Error("unknown experiment found")
	}
}

// runSmoke executes one experiment at tiny scale and checks it writes a
// non-trivial table.
func runSmoke(t *testing.T, id string) string {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q missing", id)
	}
	var buf bytes.Buffer
	if err := e.Run(context.Background(), tinyConfig(), &buf); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := buf.String()
	if len(strings.TrimSpace(out)) == 0 {
		t.Fatalf("%s produced no output", id)
	}
	return out
}

func TestLightExperimentsSmoke(t *testing.T) {
	for _, id := range []string{"table6", "table7", "table8", "fig5", "fig11", "fig12"} {
		t.Run(id, func(t *testing.T) {
			out := runSmoke(t, id)
			t.Logf("%s:\n%s", id, out)
		})
	}
}

func TestTable7PoissonVerdicts(t *testing.T) {
	out := runSmoke(t, "table7")
	if strings.Count(out, "Poisson plausible") < 3 {
		t.Errorf("order counts mostly rejected as Poisson:\n%s", out)
	}
}

func TestFig5ShowsConcentration(t *testing.T) {
	out := runSmoke(t, "fig5")
	// The density map must contain both empty and saturated cells.
	if !strings.Contains(out, "@") {
		t.Errorf("no saturated region in density map:\n%s", out)
	}
	if !strings.Contains(out, "  ") {
		t.Errorf("no empty region in density map:\n%s", out)
	}
}

func TestHeavyExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment smoke in -short mode")
	}
	for _, id := range []string{"table3", "fig6", "ablation-muupdate", "ablation-coster"} {
		t.Run(id, func(t *testing.T) {
			out := runSmoke(t, id)
			t.Logf("%s:\n%s", id, out)
		})
	}
}

func TestSweepExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep smoke in -short mode")
	}
	// fig8 exercises the shared sweep machinery (history reuse across
	// series and values) with the fewest heavy runs.
	out := runSmoke(t, "fig8")
	for _, label := range []string{"RAND", "LTG", "NEAR", "POLAR", "IRG-P", "IRG-R", "LS-P", "LS-R"} {
		if !strings.Contains(out, label) {
			t.Errorf("series %s missing from fig8 output:\n%s", label, out)
		}
	}
}

func TestConfigScaling(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Scale != 0.25 || cfg.Seeds != 3 {
		t.Errorf("defaults: %+v", cfg)
	}
	if got := cfg.Orders(); got != 70564 {
		t.Errorf("Orders() = %d", got)
	}
	if got := cfg.Drivers(1000); got != 250 {
		t.Errorf("Drivers(1000) = %d", got)
	}
	small := Config{Scale: 0.0001}.withDefaults()
	if small.Drivers(1000) < 1 {
		t.Error("driver count must never reach zero")
	}
}
