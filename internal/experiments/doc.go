// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6 and Appendices A-C) on the synthetic NYC-like
// workload. Each experiment is registered by its paper id ("table3",
// "fig7", ...) plus the ablations DESIGN.md calls out, and writes a
// plain-text table with the same rows/series the paper reports.
//
// Scale: experiments default to a configurable fraction of the paper's
// setup (282,255 orders and 1K-8K drivers on a 16x16 NYC grid). At
// Scale=1.0 the workload matches the paper's volume; the default 0.25
// keeps a full sweep laptop-friendly. EXPERIMENTS.md records the scale
// used for the committed results.
package experiments
