package dispatch

import (
	"sort"

	"mrvd/internal/geo"
	"mrvd/internal/queueing"
	"mrvd/internal/sim"
)

// LS is the local search of Algorithm 3: it seeds with another
// dispatcher's assignment (IRG by default, per the paper) and repeatedly
// updates a driver's assigned rider to a valid rider with a smaller idle
// ratio, until a fixed point (convergence is Lemma 5.1).
//
// The paper's neighbourhood "r' in R_j" ranges over all valid riders of
// driver d_j, including riders currently assigned to other drivers.
// Swapping to an assigned rider only helps when the displaced pieces can
// be re-served, so this implementation realizes that neighbourhood as
// three move types per sweep:
//
//  1. direct fill — an unassigned rider with an idle valid driver is
//     assigned (lowest idle ratio first);
//  2. improving swap — a driver trades its rider for an unassigned valid
//     rider with a strictly smaller idle ratio;
//  3. augmenting chain — an unassigned rider u takes a busy driver d
//     whose rider r moves to an idle driver that can still reach r
//     (a length-3 alternating path), growing the served set.
type LS struct {
	// Model is the queueing model; nil defaults to queueing.NewDefault().
	Model *queueing.Model
	// Seed produces the initial assignment; nil defaults to &IRG{Model}.
	Seed sim.Dispatcher
	// MaxIterations bounds the sweep count (the paper's L_max).
	// Default 16.
	MaxIterations int

	est estimateCache
}

// Name implements sim.Dispatcher.
func (l *LS) Name() string { return "LS" }

func (l *LS) init() {
	if l.Model == nil {
		l.Model = queueing.NewDefault()
	}
	if l.Seed == nil {
		l.Seed = &IRG{Model: l.Model}
	}
	if l.MaxIterations <= 0 {
		l.MaxIterations = 16
	}
}

// lsState carries the mutable search state across move types.
type lsState struct {
	ctx           *sim.Context
	a             *queueing.Analyzer
	assignedRider []int32 // driver -> rider or -1
	riderDriver   []int32 // rider -> driver or -1
	pairsByDriver [][]sim.Pair
	pairsByRider  [][]sim.Pair
}

func (s *lsState) assign(r, d int32) {
	s.assignedRider[d] = r
	s.riderDriver[r] = d
	s.a.CommitDestination(int(s.ctx.Riders[r].DestRegion))
}

func (s *lsState) release(d int32) int32 {
	r := s.assignedRider[d]
	if r == -1 {
		return -1
	}
	s.assignedRider[d] = -1
	s.riderDriver[r] = -1
	s.a.UncommitDestination(int(s.ctx.Riders[r].DestRegion))
	return r
}

// Assign implements sim.Dispatcher.
func (l *LS) Assign(ctx *sim.Context) []sim.Assignment {
	l.init()
	seed := l.Seed.Assign(ctx)

	s := &lsState{
		ctx:           ctx,
		a:             buildAnalyzer(l.Model, ctx),
		assignedRider: make([]int32, len(ctx.Drivers)),
		riderDriver:   make([]int32, len(ctx.Riders)),
		pairsByDriver: make([][]sim.Pair, len(ctx.Drivers)),
		pairsByRider:  make([][]sim.Pair, len(ctx.Riders)),
	}
	for i := range s.assignedRider {
		s.assignedRider[i] = -1
	}
	for i := range s.riderDriver {
		s.riderDriver[i] = -1
	}
	for _, p := range ctx.Pairs {
		s.pairsByDriver[p.D] = append(s.pairsByDriver[p.D], p)
		s.pairsByRider[p.R] = append(s.pairsByRider[p.R], p)
	}
	for _, as := range seed {
		s.assign(as.R, as.D)
	}

	for iter := 0; iter < l.MaxIterations; iter++ {
		changed := s.directFills()
		changed = s.improvingSwaps() || changed
		changed = s.augmentingChains() || changed
		if !changed {
			break
		}
	}

	var out []sim.Assignment
	for d, r := range s.assignedRider {
		if r != -1 {
			out = append(out, sim.Assignment{R: r, D: int32(d)})
		}
	}
	return out
}

// directFills assigns unassigned riders to idle valid drivers, lowest
// idle ratio first.
func (s *lsState) directFills() bool {
	type cand struct {
		ir   float64
		r, d int32
	}
	var cands []cand
	for r := range s.ctx.Riders {
		if s.riderDriver[r] != -1 {
			continue
		}
		for _, p := range s.pairsByRider[r] {
			if s.assignedRider[p.D] != -1 {
				continue
			}
			ir := s.a.IdleRatio(p.TripCost, int(p.DestRegion))
			cands = append(cands, cand{ir: ir, r: p.R, d: p.D})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ir != cands[j].ir {
			return cands[i].ir < cands[j].ir
		}
		if cands[i].r != cands[j].r {
			return cands[i].r < cands[j].r
		}
		return cands[i].d < cands[j].d
	})
	changed := false
	for _, c := range cands {
		if s.riderDriver[c.r] != -1 || s.assignedRider[c.d] != -1 {
			continue
		}
		s.assign(c.r, c.d)
		changed = true
	}
	return changed
}

// improvingSwaps trades a driver's rider for an unassigned valid rider
// with a strictly smaller idle ratio, both evaluated with the driver's
// current commitment released.
func (s *lsState) improvingSwaps() bool {
	changed := false
	for d := range s.assignedRider {
		cur := s.assignedRider[d]
		if cur == -1 {
			continue
		}
		curDest := int(s.ctx.Riders[cur].DestRegion)
		s.a.UncommitDestination(curDest)
		curIR := s.a.IdleRatio(s.ctx.Riders[cur].TripCost, curDest)
		bestR := int32(-1)
		bestIR := curIR
		for _, p := range s.pairsByDriver[d] {
			if p.R == cur || s.riderDriver[p.R] != -1 {
				continue
			}
			if ir := s.a.IdleRatio(p.TripCost, int(p.DestRegion)); ir < bestIR {
				bestIR = ir
				bestR = p.R
			}
		}
		s.a.CommitDestination(curDest) // restore before mutating via assign/release
		if bestR != -1 {
			s.release(int32(d))
			s.assign(bestR, int32(d))
			changed = true
		}
	}
	return changed
}

// augmentingChains serves an unassigned rider u by taking a busy driver
// d and moving d's rider r to an idle driver that can still reach r —
// the length-3 alternating path that grows the matching.
func (s *lsState) augmentingChains() bool {
	changed := false
	for u := range s.ctx.Riders {
		if s.riderDriver[u] != -1 {
			continue
		}
	chain:
		for _, pu := range s.pairsByRider[u] {
			d := pu.D
			r := s.assignedRider[d]
			if r == -1 {
				// Idle driver: directFills missed it only if it raced a
				// previous chain this sweep; take it directly.
				s.assign(int32(u), d)
				changed = true
				break chain
			}
			for _, pr := range s.pairsByRider[r] {
				if pr.D == d || s.assignedRider[pr.D] != -1 {
					continue
				}
				// Move r to the idle driver, free d for u.
				s.release(d)
				s.assign(r, pr.D)
				s.assign(int32(u), d)
				changed = true
				break chain
			}
		}
	}
	return changed
}

// EstimateIdle implements sim.IdleEstimating with the state-conditional
// T(n) of Section 4.2 (see IRG.EstimateIdle).
func (l *LS) EstimateIdle(ctx *sim.Context, region geo.RegionID) float64 {
	l.init()
	return conditionalIdleEstimate(l.est.analyzer(l.Model, ctx), ctx, region)
}
