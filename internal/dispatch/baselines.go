package dispatch

import (
	"math/rand"
	"sort"

	"mrvd/internal/sim"
)

// greedyByPairOrder assigns pairs first-fit in the order produced by
// less, skipping pairs whose rider or driver is already taken.
func greedyByPairOrder(ctx *sim.Context, less func(a, b sim.Pair) bool) []sim.Assignment {
	idx := make([]int, len(ctx.Pairs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return less(ctx.Pairs[idx[i]], ctx.Pairs[idx[j]])
	})
	usedR := make([]bool, len(ctx.Riders))
	usedD := make([]bool, len(ctx.Drivers))
	var out []sim.Assignment
	for _, i := range idx {
		p := ctx.Pairs[i]
		if usedR[p.R] || usedD[p.D] {
			continue
		}
		usedR[p.R] = true
		usedD[p.D] = true
		out = append(out, sim.Assignment{R: p.R, D: p.D})
	}
	return out
}

// LTG is the long-trip greedy baseline: orders with the highest revenue
// (trip cost) are assigned first.
type LTG struct{}

// Name implements sim.Dispatcher.
func (LTG) Name() string { return "LTG" }

// Assign implements sim.Dispatcher.
func (LTG) Assign(ctx *sim.Context) []sim.Assignment {
	return greedyByPairOrder(ctx, func(a, b sim.Pair) bool {
		if a.TripCost != b.TripCost {
			return a.TripCost > b.TripCost
		}
		return a.PickupCost < b.PickupCost
	})
}

// NEAR is the nearest-trip greedy baseline: the pair with the smallest
// pickup cost is assigned first, minimizing deadhead travel.
type NEAR struct{}

// Name implements sim.Dispatcher.
func (NEAR) Name() string { return "NEAR" }

// Assign implements sim.Dispatcher.
func (NEAR) Assign(ctx *sim.Context) []sim.Assignment {
	return greedyByPairOrder(ctx, func(a, b sim.Pair) bool {
		if a.PickupCost != b.PickupCost {
			return a.PickupCost < b.PickupCost
		}
		return a.TripCost > b.TripCost
	})
}

// RAND assigns valid pairs in uniformly random order.
type RAND struct {
	// Seed makes runs reproducible; the zero value is a valid seed.
	Seed int64
	rng  *rand.Rand
}

// Name implements sim.Dispatcher.
func (r *RAND) Name() string { return "RAND" }

// Assign implements sim.Dispatcher.
func (r *RAND) Assign(ctx *sim.Context) []sim.Assignment {
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(r.Seed))
	}
	order := r.rng.Perm(len(ctx.Pairs))
	usedR := make([]bool, len(ctx.Riders))
	usedD := make([]bool, len(ctx.Drivers))
	var out []sim.Assignment
	for _, i := range order {
		p := ctx.Pairs[i]
		if usedR[p.R] || usedD[p.D] {
			continue
		}
		usedR[p.R] = true
		usedD[p.D] = true
		out = append(out, sim.Assignment{R: p.R, D: p.D})
	}
	return out
}

// UPPER is the paper's revenue upper bound, not a real dispatcher: each
// batch it serves the min(waiting, available) most expensive orders and
// ignores pickup distances entirely.
type UPPER struct{}

// Name implements sim.Dispatcher.
func (UPPER) Name() string { return "UPPER" }

// Assign implements sim.Dispatcher.
func (UPPER) Assign(ctx *sim.Context) []sim.Assignment {
	k := len(ctx.Riders)
	if len(ctx.Drivers) < k {
		k = len(ctx.Drivers)
	}
	if k == 0 {
		return nil
	}
	riders := make([]int32, len(ctx.Riders))
	for i := range riders {
		riders[i] = int32(i)
	}
	sort.Slice(riders, func(i, j int) bool {
		ri, rj := ctx.Riders[riders[i]], ctx.Riders[riders[j]]
		if ri.TripCost != rj.TripCost {
			return ri.TripCost > rj.TripCost
		}
		return riders[i] < riders[j]
	})
	out := make([]sim.Assignment, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, sim.Assignment{R: riders[i], D: int32(i), IgnorePickup: true})
	}
	return out
}
