package dispatch

import (
	"sort"

	"math"

	"mrvd/internal/geo"
	"mrvd/internal/queueing"
	"mrvd/internal/sim"
)

// IRG is the idle-ratio oriented greedy approach of Algorithm 2: in each
// batch it selects valid rider-and-driver pairs in ascending order of
// the idle ratio IR(r, d) = ET/(cost + ET) (Eq. 17), raising the
// destination region's driver arrival rate after each commitment.
type IRG struct {
	// Model is the queueing model; nil defaults to queueing.NewDefault().
	Model *queueing.Model
	// DisableMuUpdate turns off the line-11 feedback (ablation:
	// BenchmarkAblationMuUpdate). Scores are then fixed at batch start.
	DisableMuUpdate bool

	est estimateCache
}

// Name implements sim.Dispatcher.
func (g *IRG) Name() string { return "IRG" }

func (g *IRG) model() *queueing.Model {
	if g.Model == nil {
		g.Model = queueing.NewDefault()
	}
	return g.Model
}

// Assign implements sim.Dispatcher.
func (g *IRG) Assign(ctx *sim.Context) []sim.Assignment {
	a := buildAnalyzer(g.model(), ctx)
	if g.DisableMuUpdate {
		return frozenGreedy(ctx, a, func(p sim.Pair, et float64) float64 {
			return queueing.IdleRatio(p.TripCost, et)
		})
	}
	return greedyByScore(ctx, a, func(p sim.Pair, et float64) float64 {
		return queueing.IdleRatio(p.TripCost, et)
	})
}

// EstimateIdle implements sim.IdleEstimating: the expected idle time of
// a driver that just rejoined the given region. It uses the paper's
// state-conditional form T(n) of Section 4.2 — the driver sees the
// region's actual state n (waiting riders minus congested drivers) and
// expects (|n|+1)/lambda when no riders wait — rather than the marginal
// ET(lambda, mu), which averages over states the driver is not in. The
// marginal remains what the idle-ratio ranking uses (Eq. 17).
func (g *IRG) EstimateIdle(ctx *sim.Context, region geo.RegionID) float64 {
	return conditionalIdleEstimate(g.est.analyzer(g.model(), ctx), ctx, region)
}

// estimateCache memoizes the pre-dispatch analyzer the engine's
// estimate sweep reads: every rejoined driver of a batch queries the
// same unmutated batch snapshot, so one analyzer per Context serves
// them all instead of one per driver. Dispatchers are per-run (and,
// sharded, per-shard) instances, so the cache needs no locking.
type estimateCache struct {
	ctx *sim.Context
	a   *queueing.Analyzer
}

func (c *estimateCache) analyzer(model *queueing.Model, ctx *sim.Context) *queueing.Analyzer {
	if c.ctx != ctx {
		c.a = buildAnalyzer(model, ctx)
		c.ctx = ctx
	}
	return c.a
}

// conditionalIdleEstimate evaluates T(n) for a driver arriving in region
// now: with waiting riders it is served at the next batch (half a batch
// interval on average is negligible; the paper treats it as 0); with n
// congested drivers ahead it waits for |n|+1 rider arrivals, (|n|+1)/lambda.
func conditionalIdleEstimate(a *queueing.Analyzer, ctx *sim.Context, region geo.RegionID) float64 {
	if !ctx.Grid.Valid(region) {
		return 0
	}
	lambda, _ := a.Rates(int(region))
	waiting := ctx.WaitingPerRegion[region]
	// The rejoined driver is already counted available; the queue ahead
	// of it holds the other available drivers.
	ahead := ctx.AvailablePerRegion[region] - 1
	if ahead < 0 {
		ahead = 0
	}
	n := waiting - ahead
	if n > 0 {
		return 0
	}
	if lambda <= 0 {
		return math.Inf(1)
	}
	return float64(-n+1) / lambda
}

// SHORT is Appendix C's shortest-total-time greedy: IRG with the
// selection score changed to cost + ET, which maximizes the number of
// served orders rather than revenue.
type SHORT struct {
	// Model is the queueing model; nil defaults to queueing.NewDefault().
	Model *queueing.Model
}

// Name implements sim.Dispatcher.
func (s *SHORT) Name() string { return "SHORT" }

// Assign implements sim.Dispatcher.
func (s *SHORT) Assign(ctx *sim.Context) []sim.Assignment {
	if s.Model == nil {
		s.Model = queueing.NewDefault()
	}
	a := buildAnalyzer(s.Model, ctx)
	return greedyByScore(ctx, a, func(p sim.Pair, et float64) float64 {
		return p.TripCost + et
	})
}

// frozenGreedy scores every pair once at batch start and never rescores:
// the mu-update ablation.
func frozenGreedy(ctx *sim.Context, a *queueing.Analyzer, score pairScore) []sim.Assignment {
	type scored struct {
		score float64
		idx   int32
	}
	items := make([]scored, len(ctx.Pairs))
	for i, p := range ctx.Pairs {
		items[i] = scored{score: score(p, a.ExpectedIdleTime(int(p.DestRegion))), idx: int32(i)}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].score != items[j].score {
			return items[i].score < items[j].score
		}
		return items[i].idx < items[j].idx
	})
	usedR := make([]bool, len(ctx.Riders))
	usedD := make([]bool, len(ctx.Drivers))
	var out []sim.Assignment
	for _, it := range items {
		p := ctx.Pairs[it.idx]
		if usedR[p.R] || usedD[p.D] {
			continue
		}
		usedR[p.R] = true
		usedD[p.D] = true
		out = append(out, sim.Assignment{R: p.R, D: p.D})
	}
	return out
}
