package dispatch

import (
	"sort"

	"mrvd/internal/sim"
)

// POOL is the pooling-aware greedy dispatcher: it merges the batch's
// solo pairs and shared-ride insertion options into one candidate list,
// scores each by its marginal cost — deadhead pickup seconds for a solo
// pair, added route seconds (pool.Insertion.Extra) for an insertion —
// and commits candidates cheapest-first under per-rider and per-driver
// exclusivity. With pooling disabled the option list is empty and POOL
// degrades to a nearest-pickup greedy over the solo pairs.
type POOL struct{}

// Name implements sim.Dispatcher.
func (POOL) Name() string { return "POOL" }

// Assign implements sim.Dispatcher.
func (POOL) Assign(ctx *sim.Context) []sim.Assignment {
	type cand struct {
		cost   float64
		pool   bool
		pair   int // index into ctx.Pairs
		option int // index into ctx.PoolOptions
	}
	cands := make([]cand, 0, len(ctx.Pairs)+len(ctx.PoolOptions))
	for i := range ctx.Pairs {
		cands = append(cands, cand{cost: ctx.Pairs[i].PickupCost, pair: i})
	}
	for i := range ctx.PoolOptions {
		cands = append(cands, cand{cost: ctx.PoolOptions[i].Ins.Extra, pool: true, option: i})
	}
	// Cheapest marginal cost first; on ties solo pairs win (no detour
	// imposed on other riders), then input order keeps it deterministic.
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return !cands[i].pool && cands[j].pool
	})
	usedR := make([]bool, len(ctx.Riders))
	usedD := make([]bool, len(ctx.Drivers))
	usedPlan := make(map[sim.DriverID]bool)
	var out []sim.Assignment
	for _, c := range cands {
		if c.pool {
			opt := ctx.PoolOptions[c.option]
			// One splice per plan per batch: the option's ETAs are
			// priced against the plan as it stood at batch start.
			if usedR[opt.R] || usedPlan[opt.Driver] {
				continue
			}
			usedR[opt.R] = true
			usedPlan[opt.Driver] = true
			out = append(out, sim.Assignment{R: opt.R, Pool: true, Option: int32(c.option)})
			continue
		}
		p := ctx.Pairs[c.pair]
		if usedR[p.R] || usedD[p.D] {
			continue
		}
		usedR[p.R] = true
		usedD[p.D] = true
		out = append(out, sim.Assignment{R: p.R, D: p.D})
	}
	return out
}
