package dispatch

import (
	"math"

	"mrvd/internal/geo"
	"mrvd/internal/queueing"
	"mrvd/internal/sim"
)

// QueueReposition is a sim.Repositioner that sends long-idle drivers
// toward the neighbouring region with the smallest expected idle time —
// the natural extension of the paper's framework from passive
// destination steering to active supply rebalancing (its future-work
// direction). A driver only moves when the best neighbour's ET beats the
// current region's by MinGain seconds, avoiding churn between
// near-equivalent regions.
type QueueReposition struct {
	// Model is the queueing model; nil defaults to queueing.NewDefault().
	Model *queueing.Model
	// MinGain is the ET improvement (seconds) required to move.
	// Default 120.
	MinGain float64
	// MaxHops limits how far (in region rings) a move may target.
	// Default 1 (adjacent regions only).
	MaxHops int
}

// Target implements sim.Repositioner.
func (q *QueueReposition) Target(ctx *sim.Context, driver *sim.Driver, region geo.RegionID) (geo.Point, bool) {
	if q.Model == nil {
		q.Model = queueing.NewDefault()
	}
	if q.MinGain <= 0 {
		q.MinGain = 120
	}
	if q.MaxHops <= 0 {
		q.MaxHops = 1
	}
	a := buildAnalyzer(q.Model, ctx)
	if !ctx.Grid.Valid(region) {
		return geo.Point{}, false
	}
	here := a.ExpectedIdleTime(int(region))
	best := here
	bestRegion := geo.RegionID(-1)
	frontier := []geo.RegionID{region}
	seen := map[geo.RegionID]bool{region: true}
	for hop := 0; hop < q.MaxHops; hop++ {
		var next []geo.RegionID
		for _, r := range frontier {
			for _, nb := range ctx.Grid.Neighbors(r) {
				if seen[nb] {
					continue
				}
				seen[nb] = true
				next = append(next, nb)
				if et := a.ExpectedIdleTime(int(nb)); et < best {
					best = et
					bestRegion = nb
				}
			}
		}
		frontier = next
	}
	if bestRegion < 0 || math.IsInf(here, 1) && math.IsInf(best, 1) {
		return geo.Point{}, false
	}
	if !math.IsInf(here, 1) && here-best < q.MinGain {
		return geo.Point{}, false
	}
	return ctx.Grid.Center(bestRegion), true
}
