// Package dispatch implements the batch vehicle-dispatching algorithms
// of Section 5 and the paper's comparison baselines:
//
//   - IRG: the idle-ratio oriented greedy of Algorithm 2, selecting
//     valid pairs by ascending idle ratio IR = ET/(cost+ET) with the
//     destination-region mu feedback of line 11.
//   - LS: the local search of Algorithm 3, which refines IRG's output by
//     swapping a driver's rider for a valid alternative with a smaller
//     idle ratio until convergence (Lemma 5.1).
//   - SHORT: Appendix C's serve-count variant — IRG with the score
//     changed to cost + ET, minimizing total time per service round.
//   - LTG: long-trip greedy (highest revenue first).
//   - NEAR: nearest-trip greedy (smallest pickup cost first).
//   - RAND: random valid assignment.
//   - POLAR: the predicted-distribution blueprint baseline (Tong et al.,
//     VLDB 2017), reimplemented as a region-level expected assignment
//     guiding per-batch matching; see DESIGN.md for the substitutions.
//   - UPPER: the paper's revenue upper bound — the most expensive orders
//     served while ignoring pickup distances.
//
// All dispatchers are deterministic given their seed and reusable across
// batches and runs.
//
// Dispatchers never price travel themselves: the engine computes each
// batch's driver×rider pickup-cost matrix up front through
// roadnet.BatchCoster, and every sim.Pair carries its matrix-backed
// PickupCost and TripCost. What-if costs beyond the precomputed pairs
// go through sim.Context.PickupCost (a matrix lookup with a Coster
// fallback) or a whole Context.PickupCosts.Row slice — never per-pair
// Coster.Cost calls in inner loops.
package dispatch
