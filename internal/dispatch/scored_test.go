package dispatch

import (
	"math/rand"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/queueing"
	"mrvd/internal/sim"
)

// bruteGreedy re-evaluates every remaining pair's score after each
// commitment — the O(P^2) reference implementation of Algorithm 2's
// greedy loop that the lazy heap must match.
func bruteGreedy(ctx *sim.Context, a *queueing.Analyzer, score pairScore) []sim.Assignment {
	usedR := make([]bool, len(ctx.Riders))
	usedD := make([]bool, len(ctx.Drivers))
	var out []sim.Assignment
	for {
		best := -1
		bestScore := 0.0
		for i, p := range ctx.Pairs {
			if usedR[p.R] || usedD[p.D] {
				continue
			}
			s := score(p, a.ExpectedIdleTime(int(p.DestRegion)))
			if best == -1 || s < bestScore {
				best = i
				bestScore = s
			}
		}
		if best == -1 {
			return out
		}
		p := ctx.Pairs[best]
		usedR[p.R] = true
		usedD[p.D] = true
		out = append(out, sim.Assignment{R: p.R, D: p.D})
		a.CommitDestination(int(p.DestRegion))
	}
}

// randomScoredContext fabricates a random batch for the greedy tests.
func randomScoredContext(rng *rand.Rand) *sim.Context {
	grid := geo.NewGrid(geo.NYCBBox, 4, 4)
	n := grid.NumRegions()
	ctx := &sim.Context{
		Now: 0, TC: 600, Grid: grid,
		WaitingPerRegion:   make([]int, n),
		AvailablePerRegion: make([]int, n),
		PredictedRiders:    make([]int, n),
		PredictedDrivers:   make([]int, n),
	}
	for k := 0; k < n; k++ {
		ctx.PredictedRiders[k] = rng.Intn(25)
		ctx.PredictedDrivers[k] = rng.Intn(10)
	}
	riders := 5 + rng.Intn(20)
	drivers := 2 + rng.Intn(10)
	for r := 0; r < riders; r++ {
		ctx.Riders = append(ctx.Riders, &sim.Rider{
			TripCost:   100 + rng.Float64()*1500,
			DestRegion: geo.RegionID(rng.Intn(n)),
		})
		ctx.RiderRegion = append(ctx.RiderRegion, geo.RegionID(rng.Intn(n)))
	}
	for d := 0; d < drivers; d++ {
		ctx.Drivers = append(ctx.Drivers, &sim.Driver{ID: sim.DriverID(d)})
		ctx.DriverRegion = append(ctx.DriverRegion, geo.RegionID(rng.Intn(n)))
	}
	for r := 0; r < riders; r++ {
		for d := 0; d < drivers; d++ {
			if rng.Float64() < 0.5 {
				ctx.Pairs = append(ctx.Pairs, sim.Pair{
					R: int32(r), D: int32(d),
					PickupCost: rng.Float64() * 100,
					TripCost:   ctx.Riders[r].TripCost,
					DestRegion: ctx.Riders[r].DestRegion,
				})
			}
		}
	}
	return ctx
}

func TestLazyGreedyMatchesBruteForceReference(t *testing.T) {
	// The lazy-rescoring heap is only correct because committing a pair
	// can never *decrease* another pair's score (ET is monotone in mu).
	// Verify against the quadratic reference across random batches for
	// both score functions (IRG's ratio and SHORT's sum).
	rng := rand.New(rand.NewSource(41))
	model := queueing.NewDefault()
	scores := map[string]pairScore{
		"idle-ratio": func(p sim.Pair, et float64) float64 { return queueing.IdleRatio(p.TripCost, et) },
		"cost+ET":    func(p sim.Pair, et float64) float64 { return p.TripCost + et },
	}
	for trial := 0; trial < 25; trial++ {
		ctx := randomScoredContext(rng)
		for name, score := range scores {
			lazy := greedyByScore(ctx, buildAnalyzer(model, ctx), score)
			brute := bruteGreedy(ctx, buildAnalyzer(model, ctx), score)
			if len(lazy) != len(brute) {
				t.Fatalf("trial %d %s: lazy %d pairs, brute %d", trial, name, len(lazy), len(brute))
			}
			for i := range lazy {
				if lazy[i] != brute[i] {
					t.Fatalf("trial %d %s: assignment %d differs: %+v vs %+v",
						trial, name, i, lazy[i], brute[i])
				}
			}
		}
	}
}
