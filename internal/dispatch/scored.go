package dispatch

import (
	"container/heap"

	"mrvd/internal/queueing"
	"mrvd/internal/sim"
)

// buildAnalyzer snapshots a batch context into a queueing analyzer with
// the region states of Algorithm 1 lines 3-6.
func buildAnalyzer(model *queueing.Model, ctx *sim.Context) *queueing.Analyzer {
	n := ctx.Grid.NumRegions()
	a := queueing.NewAnalyzer(model, n, ctx.TC)
	states := make([]queueing.RegionState, n)
	for k := 0; k < n; k++ {
		states[k] = queueing.RegionState{
			Waiting:          ctx.WaitingPerRegion[k],
			Available:        ctx.AvailablePerRegion[k],
			PredictedRiders:  ctx.PredictedRiders[k],
			PredictedDrivers: ctx.PredictedDrivers[k],
		}
	}
	a.Reset(states)
	return a
}

// pairScore computes a pair's priority; smaller is better. It receives
// the destination region's current expected idle time.
type pairScore func(p sim.Pair, et float64) float64

// scoredItem is one heap entry with the region version it was scored at.
type scoredItem struct {
	score   float64
	pairIdx int32
	version int32
}

type scoredHeap []scoredItem

func (h scoredHeap) Len() int { return len(h) }
func (h scoredHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	return h[i].pairIdx < h[j].pairIdx // deterministic tie-break
}
func (h scoredHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *scoredHeap) Push(x any)   { *h = append(*h, x.(scoredItem)) }
func (h *scoredHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// greedyByScore runs the exact greedy shared by IRG and SHORT:
// repeatedly take the minimum-score valid pair, commit it, and bump the
// destination region's mu (Algorithm 2 line 11).
//
// A committed driver changes its destination region's ET — and not
// monotonically: the paper's lambda > mu closed form (Eq. 10) sums the
// congested-driver side to infinity while the lambda <= mu forms
// truncate at K, so crossing the regime boundary can *lower* ET. Lazy
// rescoring therefore cannot rely on scores only growing. Instead, this
// follows the paper's own bookkeeping ("update mu(k) and the idle ratio
// of related pairs", Algorithm 2 line 11): each commit pushes fresh
// entries for every still-viable pair destined to the updated region,
// and entries whose region version is stale are discarded on pop. The
// heap thus always holds a current-score entry for every viable pair,
// so the popped current-version minimum is the true greedy choice.
func greedyByScore(ctx *sim.Context, a *queueing.Analyzer, score pairScore) []sim.Assignment {
	versions := make([]int32, ctx.Grid.NumRegions())
	// pairsByRegion indexes pairs by destination for the commit-time
	// rescoring sweep.
	pairsByRegion := make([][]int32, ctx.Grid.NumRegions())
	for i, p := range ctx.Pairs {
		pairsByRegion[p.DestRegion] = append(pairsByRegion[p.DestRegion], int32(i))
	}

	h := make(scoredHeap, 0, len(ctx.Pairs))
	for i, p := range ctx.Pairs {
		h = append(h, scoredItem{
			score:   score(p, a.ExpectedIdleTime(int(p.DestRegion))),
			pairIdx: int32(i),
			version: versions[p.DestRegion],
		})
	}
	heap.Init(&h)

	usedR := make([]bool, len(ctx.Riders))
	usedD := make([]bool, len(ctx.Drivers))
	var out []sim.Assignment
	for h.Len() > 0 {
		it := heap.Pop(&h).(scoredItem)
		p := ctx.Pairs[it.pairIdx]
		if usedR[p.R] || usedD[p.D] {
			continue
		}
		if it.version != versions[p.DestRegion] {
			// Superseded: a fresh entry was pushed when the region was
			// last committed to.
			continue
		}
		usedR[p.R] = true
		usedD[p.D] = true
		out = append(out, sim.Assignment{R: p.R, D: p.D})
		region := int(p.DestRegion)
		a.CommitDestination(region)
		versions[p.DestRegion]++
		// Rescore the region's remaining pairs under the new ET.
		et := a.ExpectedIdleTime(region)
		for _, pi := range pairsByRegion[p.DestRegion] {
			rp := ctx.Pairs[pi]
			if usedR[rp.R] || usedD[rp.D] {
				continue
			}
			heap.Push(&h, scoredItem{
				score:   score(rp, et),
				pairIdx: pi,
				version: versions[p.DestRegion],
			})
		}
	}
	return out
}
