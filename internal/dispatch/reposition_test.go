package dispatch

import (
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/sim"
)

func TestQueueRepositionMovesTowardHotNeighbor(t *testing.T) {
	ctx := buildTestContext()
	// Driver sits in a dead region (index 0: no demand) adjacent to the
	// hot region we boost below.
	grid := ctx.Grid
	cur := geo.RegionID(0)
	neighbors := grid.Neighbors(cur)
	hot := neighbors[0]
	ctx.PredictedRiders[hot] = 100

	q := &QueueReposition{MinGain: 1}
	target, ok := q.Target(ctx, &sim.Driver{Pos: grid.Center(cur)}, cur)
	if !ok {
		t.Fatal("no reposition proposed out of a dead region next to a hot one")
	}
	if got := grid.Region(target); got != hot {
		t.Errorf("reposition target region %v, want hot neighbour %v", got, hot)
	}
}

func TestQueueRepositionStaysWhenAlreadyBest(t *testing.T) {
	ctx := buildTestContext()
	// Make the driver's own region the hottest around.
	cur := geo.RegionID(5)
	ctx.PredictedRiders[cur] = 200
	q := &QueueReposition{}
	if _, ok := q.Target(ctx, &sim.Driver{Pos: ctx.Grid.Center(cur)}, cur); ok {
		t.Error("proposed a move away from the best region")
	}
}

func TestQueueRepositionRespectsMinGain(t *testing.T) {
	ctx := buildTestContext()
	cur := geo.RegionID(0)
	hot := ctx.Grid.Neighbors(cur)[0]
	// Both regions get demand; the neighbour is only slightly better.
	ctx.PredictedRiders[cur] = 50
	ctx.PredictedRiders[hot] = 52
	q := &QueueReposition{MinGain: 1e9}
	if _, ok := q.Target(ctx, &sim.Driver{Pos: ctx.Grid.Center(cur)}, cur); ok {
		t.Error("moved for a gain below MinGain")
	}
}

func TestQueueRepositionInvalidRegion(t *testing.T) {
	ctx := buildTestContext()
	q := &QueueReposition{}
	if _, ok := q.Target(ctx, &sim.Driver{}, geo.InvalidRegion); ok {
		t.Error("proposed a move from an invalid region")
	}
}

func TestQueueRepositionMaxHops(t *testing.T) {
	ctx := buildTestContext()
	cur := geo.RegionID(0)
	// Heat a region two hops away; with MaxHops=1 it must be invisible.
	far := geo.RegionID(2)
	ctx.PredictedRiders[far] = 500
	q1 := &QueueReposition{MaxHops: 1, MinGain: 1}
	if tgt, ok := q1.Target(ctx, &sim.Driver{}, cur); ok && ctx.Grid.Region(tgt) == far {
		t.Error("MaxHops=1 reached a two-hop region")
	}
	q2 := &QueueReposition{MaxHops: 2, MinGain: 1}
	if tgt, ok := q2.Target(ctx, &sim.Driver{}, cur); !ok || ctx.Grid.Region(tgt) != far {
		t.Errorf("MaxHops=2 did not reach the hot two-hop region (ok=%v)", ok)
	}
}
