package dispatch

import (
	"sort"

	"mrvd/internal/geo"
	"mrvd/internal/sim"
)

// POLAR reimplements the prediction-guided baseline of Tong et al.
// (VLDB 2017): an offline "blueprint" assignment between the predicted
// per-region driver supply and rider demand of the scheduling window,
// used online to bias each batch's matching toward blueprint-consistent
// region pairs. See DESIGN.md for the documented simplifications (the
// blueprint is a greedy transportation solution over region pairs; the
// original solves a flow on a finer grid).
type POLAR struct {
	// GuidanceBonus is the score boost a pair receives when the
	// blueprint routes supply from the driver's region to the rider's
	// region. Default 1800 (half an hour of trip value).
	GuidanceBonus float64
	// RebuildEvery is how often (seconds) the blueprint is recomputed.
	// Default 300.
	RebuildEvery float64

	blueprintAt float64
	quota       map[[2]geo.RegionID]int
	haveRun     bool
}

// Name implements sim.Dispatcher.
func (p *POLAR) Name() string { return "POLAR" }

func (p *POLAR) withDefaults() {
	if p.GuidanceBonus <= 0 {
		p.GuidanceBonus = 1800
	}
	if p.RebuildEvery <= 0 {
		p.RebuildEvery = 300
	}
}

// rebuildBlueprint computes the region-level expected assignment: supply
// S_i = available + predicted rejoining drivers of region i, demand
// D_j = waiting + predicted riders of region j. Region pairs are
// considered in descending blueprint weight (demand pull minus travel
// penalty) and allocated min(remaining supply, remaining demand) — a
// greedy transportation solution.
func (p *POLAR) rebuildBlueprint(ctx *sim.Context) {
	n := ctx.Grid.NumRegions()
	supply := make([]int, n)
	demand := make([]int, n)
	for k := 0; k < n; k++ {
		supply[k] = ctx.AvailablePerRegion[k] + ctx.PredictedDrivers[k]
		demand[k] = ctx.WaitingPerRegion[k] + ctx.PredictedRiders[k]
	}
	type regionPair struct {
		i, j   geo.RegionID
		weight float64
	}
	var pairs []regionPair
	// Restrict to region pairs within a feasibility radius: blueprint
	// legs longer than ~2 regions cannot beat a rider's patience anyway.
	for i := 0; i < n; i++ {
		if supply[i] == 0 {
			continue
		}
		ci := ctx.Grid.Center(geo.RegionID(i))
		for j := 0; j < n; j++ {
			if demand[j] == 0 {
				continue
			}
			cj := ctx.Grid.Center(geo.RegionID(j))
			d := geo.Equirect(ci, cj)
			if d > 6000 {
				continue
			}
			pairs = append(pairs, regionPair{
				i: geo.RegionID(i), j: geo.RegionID(j),
				weight: float64(demand[j]) - d/1000,
			})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].weight != pairs[b].weight {
			return pairs[a].weight > pairs[b].weight
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	p.quota = make(map[[2]geo.RegionID]int)
	remS := append([]int(nil), supply...)
	remD := append([]int(nil), demand...)
	for _, rp := range pairs {
		q := remS[rp.i]
		if remD[rp.j] < q {
			q = remD[rp.j]
		}
		if q <= 0 {
			continue
		}
		p.quota[[2]geo.RegionID{rp.i, rp.j}] += q
		remS[rp.i] -= q
		remD[rp.j] -= q
	}
	p.blueprintAt = ctx.Now
	p.haveRun = true
}

// Assign implements sim.Dispatcher: greedy over valid pairs scored by
// trip value plus the blueprint guidance bonus, consuming quota as pairs
// commit.
func (p *POLAR) Assign(ctx *sim.Context) []sim.Assignment {
	p.withDefaults()
	if !p.haveRun || ctx.Now-p.blueprintAt >= p.RebuildEvery {
		p.rebuildBlueprint(ctx)
	}
	type scored struct {
		idx   int32
		score float64
	}
	items := make([]scored, len(ctx.Pairs))
	for i, pr := range ctx.Pairs {
		key := [2]geo.RegionID{ctx.DriverRegion[pr.D], ctx.RiderRegion[pr.R]}
		s := pr.TripCost - pr.PickupCost
		if p.quota[key] > 0 {
			s += p.GuidanceBonus
		}
		items[i] = scored{idx: int32(i), score: s}
	}
	sort.Slice(items, func(a, b int) bool {
		if items[a].score != items[b].score {
			return items[a].score > items[b].score
		}
		return items[a].idx < items[b].idx
	})
	usedR := make([]bool, len(ctx.Riders))
	usedD := make([]bool, len(ctx.Drivers))
	var out []sim.Assignment
	for _, it := range items {
		pr := ctx.Pairs[it.idx]
		if usedR[pr.R] || usedD[pr.D] {
			continue
		}
		usedR[pr.R] = true
		usedD[pr.D] = true
		out = append(out, sim.Assignment{R: pr.R, D: pr.D})
		key := [2]geo.RegionID{ctx.DriverRegion[pr.D], ctx.RiderRegion[pr.R]}
		if p.quota[key] > 0 {
			p.quota[key]--
		}
	}
	return out
}
