package dispatch

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"mrvd/internal/geo"
	"mrvd/internal/queueing"
	"mrvd/internal/sim"
	"mrvd/internal/workload"
)

// buildTestContext hand-crafts a batch with two riders and two drivers:
// rider 0 is a long trip to a "hot" region (many predicted riders),
// rider 1 a short trip to a "cold" region (no future demand).
func buildTestContext() *sim.Context {
	grid := geo.NewGrid(geo.NYCBBox, 4, 4)
	n := grid.NumRegions()
	hot := 5
	cold := 10
	riders := []*sim.Rider{
		{TripCost: 1200, DestRegion: geo.RegionID(hot)},
		{TripCost: 300, DestRegion: geo.RegionID(cold)},
	}
	drivers := []*sim.Driver{{ID: 0}, {ID: 1}}
	ctx := &sim.Context{
		Now: 0, TC: 600, Grid: grid,
		Riders:  riders,
		Drivers: drivers,
		Pairs: []sim.Pair{
			{R: 0, D: 0, PickupCost: 60, TripCost: 1200, DestRegion: geo.RegionID(hot)},
			{R: 0, D: 1, PickupCost: 90, TripCost: 1200, DestRegion: geo.RegionID(hot)},
			{R: 1, D: 0, PickupCost: 30, TripCost: 300, DestRegion: geo.RegionID(cold)},
			{R: 1, D: 1, PickupCost: 40, TripCost: 300, DestRegion: geo.RegionID(cold)},
		},
		WaitingPerRegion:   make([]int, n),
		AvailablePerRegion: make([]int, n),
		PredictedRiders:    make([]int, n),
		PredictedDrivers:   make([]int, n),
		RiderRegion:        []geo.RegionID{0, 0},
		DriverRegion:       []geo.RegionID{0, 0},
	}
	ctx.WaitingPerRegion[0] = 2
	ctx.AvailablePerRegion[0] = 2
	ctx.PredictedRiders[hot] = 40 // hot destination
	ctx.PredictedRiders[cold] = 0 // cold destination
	return ctx
}

// checkValid asserts structural validity of an assignment set.
func checkValid(t *testing.T, ctx *sim.Context, as []sim.Assignment) {
	t.Helper()
	seenR := map[int32]bool{}
	seenD := map[int32]bool{}
	for _, a := range as {
		if a.R < 0 || int(a.R) >= len(ctx.Riders) || a.D < 0 || int(a.D) >= len(ctx.Drivers) {
			t.Fatalf("assignment out of range: %+v", a)
		}
		if seenR[a.R] || seenD[a.D] {
			t.Fatalf("duplicate rider or driver: %+v", a)
		}
		seenR[a.R] = true
		seenD[a.D] = true
		if a.IgnorePickup {
			continue
		}
		found := false
		for _, p := range ctx.Pairs {
			if p.R == a.R && p.D == a.D {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("assignment not backed by a valid pair: %+v", a)
		}
	}
}

func TestAllDispatchersProduceValidAssignments(t *testing.T) {
	dispatchers := []sim.Dispatcher{
		&IRG{}, &LS{}, &SHORT{}, LTG{}, NEAR{}, &RAND{Seed: 1}, &POLAR{}, UPPER{},
	}
	for _, d := range dispatchers {
		ctx := buildTestContext()
		as := d.Assign(ctx)
		checkValid(t, ctx, as)
		if len(as) == 0 {
			t.Errorf("%s assigned nothing on a feasible batch", d.Name())
		}
	}
}

func TestIRGAssignsBothRiders(t *testing.T) {
	ctx := buildTestContext()
	as := (&IRG{}).Assign(ctx)
	if len(as) != 2 {
		t.Fatalf("IRG assigned %d pairs, want 2", len(as))
	}
}

func TestIRGPrefersHotRegionPair(t *testing.T) {
	// With one driver and both riders valid, IRG must pick the long trip
	// to the hot region (low idle ratio) over the short cold trip.
	ctx := buildTestContext()
	ctx.Drivers = ctx.Drivers[:1]
	ctx.Pairs = []sim.Pair{
		{R: 0, D: 0, PickupCost: 60, TripCost: 1200, DestRegion: ctx.Riders[0].DestRegion},
		{R: 1, D: 0, PickupCost: 30, TripCost: 300, DestRegion: ctx.Riders[1].DestRegion},
	}
	as := (&IRG{}).Assign(ctx)
	if len(as) != 1 || as[0].R != 0 {
		t.Errorf("IRG chose %+v, want the hot-region rider 0", as)
	}
}

func TestIRGEstimateIdleHotColdOrdering(t *testing.T) {
	ctx := buildTestContext()
	g := &IRG{}
	hot := g.EstimateIdle(ctx, ctx.Riders[0].DestRegion)
	cold := g.EstimateIdle(ctx, ctx.Riders[1].DestRegion)
	if hot >= cold {
		t.Errorf("hot ET %v should be below cold ET %v", hot, cold)
	}
}

func TestLTGPicksLongestTrip(t *testing.T) {
	ctx := buildTestContext()
	ctx.Drivers = ctx.Drivers[:1]
	ctx.Pairs = []sim.Pair{
		{R: 0, D: 0, PickupCost: 60, TripCost: 1200},
		{R: 1, D: 0, PickupCost: 30, TripCost: 300},
	}
	as := LTG{}.Assign(ctx)
	if len(as) != 1 || as[0].R != 0 {
		t.Errorf("LTG chose %+v, want rider 0 (longest trip)", as)
	}
}

func TestNEARPicksNearestPickup(t *testing.T) {
	ctx := buildTestContext()
	ctx.Drivers = ctx.Drivers[:1]
	ctx.Pairs = []sim.Pair{
		{R: 0, D: 0, PickupCost: 60, TripCost: 1200},
		{R: 1, D: 0, PickupCost: 30, TripCost: 300},
	}
	as := NEAR{}.Assign(ctx)
	if len(as) != 1 || as[0].R != 1 {
		t.Errorf("NEAR chose %+v, want rider 1 (nearest)", as)
	}
}

func TestRANDDeterministicPerSeed(t *testing.T) {
	a1 := (&RAND{Seed: 7}).Assign(buildTestContext())
	a2 := (&RAND{Seed: 7}).Assign(buildTestContext())
	if len(a1) != len(a2) {
		t.Fatal("same seed, different assignment count")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed, different assignments")
		}
	}
}

func TestUPPERServesMostExpensive(t *testing.T) {
	ctx := buildTestContext()
	ctx.Drivers = ctx.Drivers[:1] // k = min(2 riders, 1 driver) = 1
	as := UPPER{}.Assign(ctx)
	if len(as) != 1 {
		t.Fatalf("UPPER assigned %d, want 1", len(as))
	}
	if as[0].R != 0 || !as[0].IgnorePickup {
		t.Errorf("UPPER chose %+v, want most expensive rider 0 with IgnorePickup", as[0])
	}
	if as := (UPPER{}).Assign(&sim.Context{Grid: ctx.Grid}); as != nil {
		t.Errorf("UPPER on empty batch = %v", as)
	}
}

func TestLSImprovesOrMatchesSeedIdleRatioSum(t *testing.T) {
	// Seed LS with LTG (a deliberately bad seed for idle ratio) and
	// verify the total idle ratio does not increase.
	ctx := buildTestContext()
	model := queueing.NewDefault()
	seed := LTG{}
	seedAssign := seed.Assign(buildTestContext())
	ls := &LS{Model: model, Seed: LTG{}}
	lsAssign := ls.Assign(ctx)
	checkValid(t, ctx, lsAssign)

	ratioSum := func(as []sim.Assignment) float64 {
		a := buildAnalyzer(model, buildTestContext())
		sum := 0.0
		for _, x := range as {
			r := ctx.Riders[x.R]
			sum += a.IdleRatio(r.TripCost, int(r.DestRegion))
		}
		return sum
	}
	if ratioSum(lsAssign) > ratioSum(seedAssign)+1e-9 {
		t.Errorf("LS worsened the idle-ratio sum: %v -> %v",
			ratioSum(seedAssign), ratioSum(lsAssign))
	}
}

func TestLSConverges(t *testing.T) {
	// A larger random batch: LS must terminate well inside MaxIterations
	// and produce a valid assignment.
	rng := rand.New(rand.NewSource(5))
	grid := geo.NewGrid(geo.NYCBBox, 4, 4)
	n := grid.NumRegions()
	ctx := &sim.Context{
		Now: 0, TC: 600, Grid: grid,
		WaitingPerRegion:   make([]int, n),
		AvailablePerRegion: make([]int, n),
		PredictedRiders:    make([]int, n),
		PredictedDrivers:   make([]int, n),
	}
	for r := 0; r < 30; r++ {
		ctx.Riders = append(ctx.Riders, &sim.Rider{
			TripCost:   200 + rng.Float64()*1800,
			DestRegion: geo.RegionID(rng.Intn(n)),
		})
		ctx.RiderRegion = append(ctx.RiderRegion, geo.RegionID(rng.Intn(n)))
	}
	for d := 0; d < 12; d++ {
		ctx.Drivers = append(ctx.Drivers, &sim.Driver{ID: sim.DriverID(d)})
		ctx.DriverRegion = append(ctx.DriverRegion, geo.RegionID(rng.Intn(n)))
	}
	for ri := range ctx.Riders {
		for di := range ctx.Drivers {
			if rng.Float64() < 0.4 {
				ctx.Pairs = append(ctx.Pairs, sim.Pair{
					R: int32(ri), D: int32(di),
					PickupCost: rng.Float64() * 100,
					TripCost:   ctx.Riders[ri].TripCost,
					DestRegion: ctx.Riders[ri].DestRegion,
				})
			}
		}
	}
	for k := 0; k < n; k++ {
		ctx.PredictedRiders[k] = rng.Intn(20)
		ctx.PredictedDrivers[k] = rng.Intn(10)
	}
	ls := &LS{}
	as := ls.Assign(ctx)
	checkValid(t, ctx, as)
	if len(as) == 0 {
		t.Error("LS assigned nothing")
	}
}

func TestPOLARUsesGuidance(t *testing.T) {
	ctx := buildTestContext()
	p := &POLAR{}
	as := p.Assign(ctx)
	checkValid(t, ctx, as)
	if len(as) != 2 {
		t.Errorf("POLAR assigned %d pairs, want 2", len(as))
	}
	// Blueprint must have been built.
	if !p.haveRun {
		t.Error("POLAR never built its blueprint")
	}
}

// endToEnd runs a shortage scenario through the real engine.
func endToEnd(t *testing.T, d sim.Dispatcher, seed int64) *sim.Metrics {
	t.Helper()
	city := workload.NewCity(workload.CityConfig{
		OrdersPerDay: 28000, Seed: 31, BaseWaitSeconds: 120,
	})
	rng := rand.New(rand.NewSource(seed))
	orders := city.GenerateDay(0, rng)
	// A 0.1-scale version of the paper's default setting (282K orders,
	// 1K drivers, tau=120s, Delta=3s): the shortage regime of Figure 7
	// where the queueing-aware methods differentiate.
	starts := city.InitialDrivers(100, orders, rng)
	exp := city.ExpectedDayCounts(0, 1200)
	cfg := sim.Config{
		Grid: city.Grid(), Delta: 3, TC: 1200, Horizon: 24 * 3600,
		PredictRiders: func(now, tc float64) []int {
			slot := int(now / 1200)
			if slot >= len(exp) {
				slot = len(exp) - 1
			}
			out := make([]int, len(exp[slot]))
			for r := range out {
				out[r] = int(exp[slot][r] + 0.5)
			}
			return out
		},
	}
	m, err := sim.New(cfg, orders, starts).Run(context.Background(), d)
	if err != nil {
		t.Fatalf("%s: %v", d.Name(), err)
	}
	return m
}

func TestEndToEndRevenueOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end in -short mode")
	}
	// The paper averages 10 problem instances per data point (Section
	// 6.3); at this 0.1-scale city single-seed gaps are noise-sized, so
	// average three instances and assert the mean ordering.
	mean := func(mk func() sim.Dispatcher) float64 {
		total := 0.0
		for seed := int64(1); seed <= 3; seed++ {
			total += endToEnd(t, mk(), seed).Revenue
		}
		return total / 3
	}
	irg := mean(func() sim.Dispatcher { return &IRG{} })
	ls := mean(func() sim.Dispatcher { return &LS{} })
	rnd := mean(func() sim.Dispatcher { return &RAND{Seed: 1} })
	t.Logf("mean revenue: IRG=%.0f LS=%.0f RAND=%.0f", irg, ls, rnd)
	if irg <= rnd {
		t.Errorf("IRG mean (%.0f) did not beat RAND mean (%.0f)", irg, rnd)
	}
	if ls <= rnd {
		t.Errorf("LS mean (%.0f) did not beat RAND mean (%.0f)", ls, rnd)
	}
	// UPPER dominates every algorithm on each instance.
	upper := endToEnd(t, UPPER{}, 1)
	one := endToEnd(t, &IRG{}, 1)
	if upper.Revenue < one.Revenue {
		t.Errorf("UPPER (%.0f) below IRG (%.0f): bound violated", upper.Revenue, one.Revenue)
	}
}

func TestEndToEndIdleEstimatesRecorded(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end in -short mode")
	}
	m := endToEnd(t, &IRG{}, 2)
	withEstimate := 0
	for _, rec := range m.IdleRecords {
		if !math.IsNaN(rec.Estimate) {
			withEstimate++
		}
	}
	if withEstimate == 0 {
		t.Fatal("no idle records carry a queueing estimate")
	}
}

func TestSHORTServesAtLeastAsManyAsLTGEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end in -short mode")
	}
	short := endToEnd(t, &SHORT{}, 3)
	ltg := endToEnd(t, LTG{}, 3)
	t.Logf("SHORT served=%d LTG served=%d", short.Served, ltg.Served)
	if short.Served < ltg.Served {
		t.Errorf("SHORT served %d < LTG %d; Appendix C expects SHORT to maximize count",
			short.Served, ltg.Served)
	}
}

func TestIRGMuUpdateAblationStillValid(t *testing.T) {
	ctx := buildTestContext()
	as := (&IRG{DisableMuUpdate: true}).Assign(ctx)
	checkValid(t, ctx, as)
	if len(as) != 2 {
		t.Errorf("frozen IRG assigned %d, want 2", len(as))
	}
}
