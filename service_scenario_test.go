package mrvd

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestWithScenarioValidation(t *testing.T) {
	bad := []ScenarioConfig{
		{CancelRate: -0.1},
		{CancelRate: 1.5},
		{DeclineProb: 2},
		{DeclineProb: -1},
		{DeclineCooldown: -5},
		{TravelNoise: -0.2},
	}
	for _, sc := range bad {
		if _, err := NewService(WithScenario(sc)); err == nil {
			t.Errorf("WithScenario(%+v) accepted", sc)
		}
	}
	if _, err := NewService(WithScenario(ScenarioConfig{
		CancelRate: 0.2, DeclineProb: 0.1, DeclineCooldown: 30, TravelNoise: 0.3, Seed: 1,
	})); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

// TestServiceScenarioZeroValueParity: WithScenario with a zero-valued
// config is exactly equivalent to omitting the option.
func TestServiceScenarioZeroValueParity(t *testing.T) {
	mk := func(opts ...Option) Summary {
		base := []Option{
			WithCity(NewCity(CityConfig{OrdersPerDay: 1500, Seed: 17})),
			WithFleet(40),
			WithHorizon(4 * 3600),
			WithPrediction(PredictNone, nil),
		}
		svc := mustService(t, append(base, opts...)...)
		m, err := svc.Run(context.Background(), "LS")
		if err != nil {
			t.Fatal(err)
		}
		return m.Summary()
	}
	plain := mk()
	zero := mk(WithScenario(ScenarioConfig{Seed: 42}))
	if plain != zero {
		t.Fatalf("zero-valued WithScenario changed the run:\n  plain: %+v\n  zero:  %+v", plain, zero)
	}
}

// TestServiceScenarioRun: the disruption layer reaches Service.Run —
// cancels and declines show up in the aggregated metrics and reduce
// neither determinism nor accounting.
func TestServiceScenarioRun(t *testing.T) {
	run := func() Summary {
		svc := mustService(t,
			WithCity(NewCity(CityConfig{OrdersPerDay: 1500, Seed: 17})),
			WithFleet(40),
			WithHorizon(4*3600),
			WithPrediction(PredictNone, nil),
			WithScenario(ScenarioConfig{CancelRate: 0.25, DeclineProb: 0.1, TravelNoise: 0.2, Seed: 3}),
		)
		m, err := svc.Run(context.Background(), "LS")
		if err != nil {
			t.Fatal(err)
		}
		// The 4h horizon truncates the sized full-day trace, so terminal
		// outcomes only cover the admitted prefix.
		if m.Served+m.Reneged+m.Canceled > m.TotalOrders {
			t.Fatalf("accounting broken: %+v", m.Summary())
		}
		return m.Summary()
	}
	a := run()
	if a.Canceled == 0 || a.Declines == 0 || a.TravelSamples == 0 {
		t.Fatalf("scenario inactive: %+v", a)
	}
	if b := run(); a != b {
		t.Fatalf("scenario run not deterministic:\n  %+v\n  %+v", a, b)
	}
}

// cancelTestService builds a session where a submitted order is out of
// every driver's reach, so it stays waiting until canceled or expired.
func cancelTestService(t *testing.T, opts ...Option) (*Service, []Point, Point) {
	t.Helper()
	city := NewCity(CityConfig{OrdersPerDay: 1000, Seed: 6})
	box := city.Grid().Bounds()
	base := []Option{
		WithCity(city),
		WithFleet(2),
		WithBatchInterval(3),
		WithHorizon(30 * 24 * 3600),
		WithPrediction(PredictNone, nil),
	}
	svc := mustService(t, append(base, opts...)...)
	// Fleet in one corner, far pickup in the other: at 600s patience the
	// search radius (600 * 12 m/s = 7.2km) never reaches the fleet.
	starts := []Point{
		{Lng: box.MinLng + 1e-3, Lat: box.MinLat + 1e-3},
		{Lng: box.MinLng + 2e-3, Lat: box.MinLat + 1e-3},
	}
	farPickup := Point{Lng: box.MaxLng - 1e-3, Lat: box.MaxLat - 1e-3}
	return svc, starts, farPickup
}

func TestServeHandleCancelResolvesOutcome(t *testing.T) {
	svc, starts, farPickup := cancelTestService(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := svc.Start(ctx, "NEAR", starts)
	if err != nil {
		t.Fatal(err)
	}
	now := h.Clock()
	id, ch, err := h.Submit(Order{
		PostTime: now, Deadline: now + 600,
		Pickup: farPickup, Dropoff: Point{Lng: farPickup.Lng - 1e-2, Lat: farPickup.Lat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Cancel(id); err != nil {
		t.Fatalf("Cancel(%d) = %v", id, err)
	}
	select {
	case out := <-ch:
		if out.Status != OutcomeCanceledByRider {
			t.Fatalf("order %d status %v, want canceled_by_rider", id, out.Status)
		}
		if out.Status.String() != "canceled_by_rider" {
			t.Fatalf("status string %q", out.Status.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancel outcome never arrived")
	}
	// The waiter is gone: a second cancel is an unknown order.
	if err := h.Cancel(id); !errors.Is(err, ErrUnknownOrder) {
		t.Fatalf("double cancel = %v, want ErrUnknownOrder", err)
	}
	if err := h.Cancel(9999); !errors.Is(err, ErrUnknownOrder) {
		t.Fatalf("bogus cancel = %v, want ErrUnknownOrder", err)
	}
	if h.InFlight() != 0 {
		t.Fatalf("in-flight %d after cancel", h.InFlight())
	}
	h.Close()
	m, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if m.Canceled != 1 {
		t.Fatalf("metrics canceled = %d, want 1", m.Canceled)
	}
	// After the session, Cancel reports the session gone.
	if err := h.Cancel(id); !errors.Is(err, ErrServeFinished) {
		t.Fatalf("post-session cancel = %v, want ErrServeFinished", err)
	}
}

// TestServeHandleCancelSharded drives the cancel path through the
// partitioned runtime's router: the cancel must find the shard that
// admitted the order.
func TestServeHandleCancelSharded(t *testing.T) {
	svc, starts, farPickup := cancelTestService(t, WithShards(2))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	h, err := svc.Start(ctx, "NEAR", starts)
	if err != nil {
		t.Fatal(err)
	}
	now := h.Clock()
	id, ch, err := h.Submit(Order{
		PostTime: now, Deadline: now + 600,
		Pickup: farPickup, Dropoff: Point{Lng: farPickup.Lng - 1e-2, Lat: farPickup.Lat},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Cancel(id); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-ch:
		if out.Status != OutcomeCanceledByRider {
			t.Fatalf("sharded cancel outcome %v, want canceled_by_rider", out.Status)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sharded cancel outcome never arrived")
	}
	canceled := 0
	for _, s := range h.ShardStats() {
		canceled += s.Canceled
	}
	if canceled != 1 {
		t.Fatalf("shard stats count %d cancels, want 1", canceled)
	}
	h.Close()
	m, err := h.Result()
	if err != nil {
		t.Fatal(err)
	}
	if m.Canceled != 1 {
		t.Fatalf("sharded metrics canceled = %d, want 1", m.Canceled)
	}
}
