package mrvd_test

import (
	"context"
	"fmt"
	"log"

	"mrvd"
)

// ExampleNewService shows the functional-options construction: a
// synthetic city, a fleet size, and the paper's batch timing. The zero
// configuration is also valid — it gives the scaled NYC-like default.
func ExampleNewService() {
	city := mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 2000, Seed: 1})
	svc, err := mrvd.NewService(
		mrvd.WithCity(city),
		mrvd.WithFleet(20),
		mrvd.WithBatchInterval(3),
		mrvd.WithSchedulingWindow(1200),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(svc.Options().NumDrivers, "drivers")
	fmt.Println("algorithms:", mrvd.AlgorithmNames())
	// Output:
	// 20 drivers
	// algorithms: [IRG LS SHORT LTG NEAR RAND POLAR UPPER POOL]
}

// ExampleService_Run simulates a short morning window of a small city
// under the idle-ratio greedy dispatcher and reads the deterministic
// run facts off the metrics. Runs are reproducible: the same seed and
// configuration always yield the same Summary.
func ExampleService_Run() {
	city := mrvd.NewCity(mrvd.CityConfig{OrdersPerDay: 1000, Seed: 1})
	svc, err := mrvd.NewService(
		mrvd.WithCity(city),
		mrvd.WithFleet(30),
		mrvd.WithHorizon(1800), // half an hour of simulated time
	)
	if err != nil {
		log.Fatal(err)
	}
	m, err := svc.Run(context.Background(), "IRG")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batches run: %d\n", m.Batches)
	fmt.Printf("orders in trace: %d\n", m.TotalOrders)
	// Output:
	// batches run: 600
	// orders in trace: 911
}
