package mrvd

import (
	"bytes"
	"context"
	"math"
	"testing"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	city := NewCity(CityConfig{OrdersPerDay: 4000, Seed: 1})
	svc, err := NewService(
		WithCity(city),
		WithFleet(30),
		WithBatchInterval(10),
		WithHorizon(3*3600),
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := svc.Run(context.Background(), "LS")
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalOrders == 0 || m.Batches == 0 {
		t.Errorf("empty run: %+v", m)
	}
	if m.Served+m.Reneged > m.TotalOrders {
		t.Errorf("outcome accounting broken: %d+%d > %d", m.Served, m.Reneged, m.TotalOrders)
	}
}

func TestPublicAPIDeprecatedRunnerFlow(t *testing.T) {
	// The pre-v2 Runner entry point keeps working (with a context).
	city := NewCity(CityConfig{OrdersPerDay: 2000, Seed: 1})
	runner := NewRunner(Options{
		City: city, NumDrivers: 20, Delta: 10, Horizon: 2 * 3600,
	})
	ls, err := NewDispatcher("LS", 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := runner.Run(context.Background(), ls, PredictOracle, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalOrders == 0 {
		t.Errorf("empty run: %+v", m)
	}
}

func TestPublicAPIAlgorithmNames(t *testing.T) {
	names := AlgorithmNames()
	if len(names) != 9 {
		t.Fatalf("AlgorithmNames = %v", names)
	}
	for _, n := range names {
		d, err := NewDispatcher(n, 1)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if d.Name() != n {
			t.Errorf("dispatcher %q reports %q", n, d.Name())
		}
	}
	if _, err := NewDispatcher("bogus", 1); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestPublicAPIQueueing(t *testing.T) {
	// More rider demand means shorter driver idle.
	lo := ExpectedIdleTime(0.5, 0.2, 50)
	hi := ExpectedIdleTime(0.1, 0.2, 50)
	if lo >= hi {
		t.Errorf("ET not monotone: ET(0.5)=%v >= ET(0.1)=%v", lo, hi)
	}
	if et := ExpectedIdleTime(0, 0.2, 50); !math.IsInf(et, 1) {
		t.Errorf("no-demand ET = %v, want +Inf", et)
	}
	m := NewQueueModel(QueueConfig{Beta: 0.1})
	if m.ExpectedIdleTime(0.3, 0.2, 10) <= 0 {
		t.Error("custom model ET not positive")
	}
}

func TestPublicAPIGrids(t *testing.T) {
	g := NewNYCGrid()
	if g.NumRegions() != 256 {
		t.Errorf("NYC grid regions = %d", g.NumRegions())
	}
	g2 := NewGrid(NYCBBox, 8, 8)
	if g2.NumRegions() != 64 {
		t.Errorf("8x8 grid regions = %d", g2.NumRegions())
	}
}

func TestPublicAPIPredictors(t *testing.T) {
	ps := Predictors(1)
	if len(ps) != 4 {
		t.Fatalf("Predictors returned %d models", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name()] = true
	}
	for _, want := range []string{"STNet(DeepST)", "HA", "LR", "GBRT"} {
		if !names[want] {
			t.Errorf("missing predictor %s (have %v)", want, names)
		}
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	city := NewCity(CityConfig{OrdersPerDay: 500, Seed: 2})
	runner := NewRunner(Options{City: city, NumDrivers: 5, Horizon: 600})
	orders := runner.Orders()
	var buf bytes.Buffer
	if err := WriteOrdersCSV(&buf, orders); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOrdersCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orders) {
		t.Errorf("round trip %d -> %d orders", len(orders), len(back))
	}
}

func TestPublicAPICosters(t *testing.T) {
	def := DefaultCoster()
	a := Point{Lng: -73.98, Lat: 40.75}
	b := Point{Lng: -73.95, Lat: 40.77}
	if def.Cost(a, b) <= 0 {
		t.Error("default coster returned non-positive cost")
	}
	graph := GraphCoster(1)
	if c := graph.Cost(a, b); c <= 0 || math.IsInf(c, 1) {
		t.Errorf("graph coster cost = %v", c)
	}
	// Street networks can only be slower than the L1 lower bound at the
	// same speed... jitter makes individual streets faster, so allow 2x
	// slack either way; this is a sanity check, not a bound proof.
	if ratio := graph.Cost(a, b) / def.Cost(a, b); ratio < 0.4 || ratio > 3 {
		t.Errorf("graph/default cost ratio %v implausible", ratio)
	}
}

func TestPublicAPIDirectDispatchers(t *testing.T) {
	if NewIRG().Name() != "IRG" {
		t.Error("NewIRG name")
	}
	if NewLS().Name() != "LS" {
		t.Error("NewLS name")
	}
}
